package core

// This file is the two-stage entry point the design-space sweep
// (internal/explore) is built on. A single Retime call runs the six-pass flow
// front to back; a sweep over many candidate periods wants to run the model
// half (steps 1-3: mc-graph, bounds, sharing) once, then the solve half
// (steps 4-6) once per period — concurrently, against shared read-only state.
//
// Prepare runs exactly the passes Retime runs for steps 1-3 and freezes the
// result. From it:
//
//   - Anchor runs steps 4-6 with the MinAreaAtMinPeriod objective on the
//     prepared state, using the cache's own (still empty) cut pool and the
//     pristine bounds — the identical inputs Retime's solve half sees — so
//     the anchor circuit is bit-for-bit the single-point Retime result, by
//     construction rather than by luck. It also snapshots the cut pool the
//     solve accumulated, which seeds every per-period solve.
//
//   - SolveAtPeriod runs steps 4-6 with the MinAreaAtPeriod objective at one
//     target period, on fully private mutable state: a clone of the pristine
//     bounds (the §5.2 loop tightens bounds in place), a private cut pool
//     seeded from the anchor snapshot (period cuts are graph-path properties,
//     valid under any bounds), and inner parallelism pinned to 1 so the
//     sweep's parallelism lives across points, not inside them. The shared
//     SolveCache is safe for concurrent use and keeps W/D and the circuit
//     constraints common to all points.
//
//   - Candidates returns the distinct D-matrix entries — the only periods at
//     which the feasible front can step (a critical path's delay is a D
//     entry), hence the sweep's probe set.

import (
	"context"
	"sync"
	"sync/atomic"

	"mcretiming/internal/graph"
	"mcretiming/internal/netlist"
	"mcretiming/internal/par"
	"mcretiming/internal/pass"
	"mcretiming/internal/trace"
)

// Prepared is a circuit with the model half of the retiming flow (steps 1-3)
// done: ready to solve at any number of target periods. Safe for concurrent
// use once Prepare returns.
type Prepared struct {
	in   *netlist.Circuit
	opts Options

	st      *flowState // frozen post-share state; never mutated after Prepare
	cache   *graph.SolveCache
	workers int
	baseRep Report // report fields of steps 1-3

	anchorOnce sync.Once
	anchorOut  *netlist.Circuit
	anchorRep  *Report
	anchorErr  error
	seed       []graph.Cut // cut-pool snapshot taken after the anchor solve

	// ladderSlot is a single-slot pool of probe ladders (warm SPFA state,
	// see graph.ProbeLadder). A solve takes the slot's ladder — or a fresh one
	// when the slot is empty or another solve holds it — and returns it when
	// done. Serial solve sequences (the anchor, a serial sweep, repeated
	// SolveAtPeriod calls) therefore share one ladder and warm-start each
	// other; concurrent solves degrade to private ladders without locking.
	ladderSlot atomic.Pointer[graph.ProbeLadder]
}

// takeLadder pops the shared probe ladder, or makes a fresh one if the slot
// is empty (first solve, or a concurrent solve holds it).
func (p *Prepared) takeLadder() *graph.ProbeLadder {
	if lad := p.ladderSlot.Swap(nil); lad != nil {
		return lad
	}
	return graph.NewProbeLadder()
}

// putLadder returns a ladder to the slot for the next solve to warm-start
// from. Under concurrency the last returner wins; the dropped ladder is just
// buffers.
func (p *Prepared) putLadder(lad *graph.ProbeLadder) { p.ladderSlot.Store(lad) }

// Prepare runs steps 1-3 of the flow on c and returns the reusable state.
// opts is the option set every subsequent solve inherits (SolveAtPeriod
// overrides the objective, target period, and parallelism per call).
func Prepare(ctx context.Context, c *netlist.Circuit, opts Options) (*Prepared, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sink := opts.Trace
	if sink == nil {
		sink = trace.Nop()
	}
	st := &flowState{in: c, opts: opts, rep: &Report{}, pool: &graph.CutPool{}}
	st.workers = par.Workers(opts.Parallelism)
	st.rep.Workers = st.workers
	sink.Add("workers", int64(st.workers))
	pc := pass.NewContext(trace.With(ctx, sink), sink, st)
	pc.Observe = st.observe
	if err := preparePasses().Run(pc); err != nil {
		return nil, err
	}
	return &Prepared{
		in:      c,
		opts:    opts,
		st:      st,
		cache:   st.eng.Cache,
		workers: st.workers,
		baseRep: *st.rep,
	}, nil
}

// solveState builds a private flow state for one solve over the prepared
// model: shared immutable artifacts (mc-graph, bounds info, solver graph,
// cache), private mutable ones (bounds clone, pool, report).
func (p *Prepared) solveState(opts Options, pool *graph.CutPool, workers int) *flowState {
	rep := p.baseRep
	rep.PassTimes = append([]PassTime(nil), p.baseRep.PassTimes...)
	rep.Degraded = append([]string(nil), p.baseRep.Degraded...)
	rep.Workers = workers
	return &flowState{
		in:      p.in,
		opts:    opts,
		rep:     &rep,
		m:       p.st.m,
		info:    p.st.info,
		g:       p.st.g,
		bounds:  p.st.bounds.Clone(),
		pool:    pool,
		workers: workers,
		eng:     &graph.Engine{Workers: workers, Cache: p.cache},
	}
}

// runSolve executes the solve half (steps 4-6 under the §5.2 retry loop) on
// st and returns the retimed circuit with its report.
func runSolve(ctx context.Context, sink trace.Sink, st *flowState) (*netlist.Circuit, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if sink == nil {
		sink = trace.Nop()
	}
	pc := pass.NewContext(trace.With(ctx, sink), sink, st)
	pc.Observe = st.observe
	if err := solvePasses(st.opts).Run(pc); err != nil {
		return nil, nil, err
	}
	return st.out, st.rep, nil
}

// Anchor runs (once) the MinAreaAtMinPeriod solve on the prepared state and
// returns its circuit and report; later calls return the memoized result.
// This is the sweep's φ* endpoint, and its inputs — the pristine post-share
// bounds, the cache's empty cut pool, the prepare-time worker count — are
// exactly what Retime's solve half would see, so the output is bit-for-bit
// the single-point Retime(MinAreaAtMinPeriod) result.
//
// The first caller's ctx and sink drive the solve. The returned report is
// shared: callers must not mutate it.
func (p *Prepared) Anchor(ctx context.Context, sink trace.Sink) (*netlist.Circuit, *Report, error) {
	p.anchorOnce.Do(func() {
		opts := p.opts
		opts.Objective = MinAreaAtMinPeriod
		st := p.solveState(opts, p.cache.Pool(p.st.g), p.workers)
		lad := p.takeLadder()
		st.eng.Ladder = lad
		out, rep, err := runSolve(ctx, sink, st)
		p.putLadder(lad)
		if err != nil {
			p.anchorErr = err
			return
		}
		p.anchorOut, p.anchorRep = out, rep
		// The anchor's cuts seed every per-period solve: a period cut is a
		// property of a graph path, so it stays valid under any bounds and any
		// target period (ForPeriod filters by path delay).
		p.seed = st.pool.Snapshot()
	})
	return p.anchorOut, p.anchorRep, p.anchorErr
}

// MinPeriod returns the minimum feasible clock period found by the anchor
// solve (0 before Anchor has run).
func (p *Prepared) MinPeriod() int64 {
	if p.anchorRep == nil {
		return 0
	}
	return p.anchorRep.PeriodAfter
}

// BaselinePeriod returns the circuit's clock period before retiming.
func (p *Prepared) BaselinePeriod() int64 { return p.baseRep.PeriodBefore }

// RegsBefore returns the circuit's register count before retiming.
func (p *Prepared) RegsBefore() int { return p.baseRep.RegsBefore }

// Workers returns the resolved prepare-time parallelism.
func (p *Prepared) Workers() int { return p.workers }

// Candidates returns the candidate clock periods of the sweep: the distinct
// path-delay (D) values, ascending. Every critical path's delay is a D
// entry, so the feasible period↔area front can only step at these values;
// probing anything else is provably redundant.
//
// The sparse engine streams them per source (graph.CandidatePeriods) with an
// early cutoff at the largest vertex delay — no feasible period is below it,
// and the sweep only probes periods above the minimum feasible one, so the
// pruned tail is unreachable by construction. EngineDense reads them off the
// cached W/D matrices instead, unpruned; the two lists differ only below the
// cutoff, which is why the explore store discriminates its keys by engine.
func (p *Prepared) Candidates(ctx context.Context) ([]int64, error) {
	if p.opts.Engine == EngineDense {
		wd, err := p.cache.WD(ctx, p.st.g, p.workers)
		if err != nil {
			return nil, err
		}
		return wd.Candidates(), nil
	}
	return p.st.g.CandidatePeriods(ctx, p.workers, p.st.g.MaxDelay())
}

// SolveAtPeriod runs a MinAreaAtPeriod solve at target period phi on private
// state and returns the retimed circuit and report. Safe to call from many
// goroutines at once: each call clones the pristine bounds, seeds a private
// cut pool from the anchor snapshot, and pins inner parallelism to 1 (the
// sweep parallelizes across points). The first call triggers the anchor solve
// if it has not run yet, so every point benefits from the seed cuts.
//
// The result is deterministic per phi — independent of sweep parallelism and
// of which other periods are being solved — because no mutable state is
// shared and the solvers are bit-identical at every worker count.
func (p *Prepared) SolveAtPeriod(ctx context.Context, phi int64, sink trace.Sink) (*netlist.Circuit, *Report, error) {
	if _, _, err := p.Anchor(ctx, nil); err != nil {
		return nil, nil, err
	}
	opts := p.opts
	opts.Objective = MinAreaAtPeriod
	opts.TargetPeriod = phi
	opts.Parallelism = 1
	pool := graph.NewCutPool(append([]graph.Cut(nil), p.seed...))
	st := p.solveState(opts, pool, 1)
	lad := p.takeLadder()
	st.eng.Ladder = lad
	out, rep, err := runSolve(ctx, sink, st)
	p.putLadder(lad)
	return out, rep, err
}
