package core

import (
	"fmt"
	"testing"

	"mcretiming/internal/gen"
	"mcretiming/internal/netlist"
)

// retimeText runs one Retime and returns the output circuit's canonical text
// plus the result fields that must agree across engines.
func retimeText(t *testing.T, c *netlist.Circuit, opts Options) (string, *Report) {
	t.Helper()
	out, rep, err := Retime(c, opts)
	if err != nil {
		t.Fatalf("engine=%v cold=%t: %v", opts.Engine, opts.ColdProbes, err)
	}
	return circuitText(t, out), rep
}

// assertEngineAgreement solves c with the cold sparse reference (the PR6
// path: no probe ladder, every probe re-seeds SPFA) and requires the
// warm-started sparse engine and the arrival hybrid to reproduce it byte for
// byte — circuit text, period, register count, movement counters. When dense
// is true the dense W/D oracle joins the comparison.
func assertEngineAgreement(t *testing.T, c *netlist.Circuit, obj Objective, dense bool) {
	t.Helper()
	refText, refRep := retimeText(t, c, Options{Objective: obj, Engine: EngineSparse, ColdProbes: true, Parallelism: 1})
	check := func(name, text string, rep *Report) {
		t.Helper()
		if text != refText {
			t.Fatalf("%s: circuit differs from cold sparse reference", name)
		}
		if rep.PeriodAfter != refRep.PeriodAfter || rep.RegsAfter != refRep.RegsAfter ||
			rep.StepsMoved != refRep.StepsMoved || rep.Retries != refRep.Retries {
			t.Fatalf("%s: report diverged: period %d/%d regs %d/%d steps %d/%d",
				name, rep.PeriodAfter, refRep.PeriodAfter, rep.RegsAfter, refRep.RegsAfter,
				rep.StepsMoved, refRep.StepsMoved)
		}
	}
	warmText, warmRep := retimeText(t, c, Options{Objective: obj, Engine: EngineSparse, Parallelism: 1})
	check("warm sparse", warmText, warmRep)
	arrText, arrRep := retimeText(t, c, Options{Objective: obj, Engine: EngineArrival, Parallelism: 1})
	check("arrival", arrText, arrRep)
	if arrRep.Engine != "arrival" {
		t.Fatalf("arrival Report.Engine = %q", arrRep.Engine)
	}
	if dense {
		denseText, denseRep := retimeText(t, c, Options{Objective: obj, Engine: EngineDense, Parallelism: 1})
		if denseText != refText {
			t.Fatal("dense oracle: circuit differs from cold sparse reference")
		}
		if denseRep.PeriodAfter != refRep.PeriodAfter || denseRep.RegsAfter != refRep.RegsAfter {
			t.Fatalf("dense oracle: period/regs diverged: %d/%d vs %d/%d",
				denseRep.PeriodAfter, refRep.PeriodAfter, denseRep.RegsAfter, refRep.RegsAfter)
		}
	}
}

// TestWarmEquivalenceGolden pins the warm-started probes and the arrival
// hybrid to the cold sparse reference on the golden trio (mapped C2/C6/C7
// and the seeded random mix, see equivCircuits). Cold sparse is itself
// pinned to the dense oracle by TestEngineEquivalence, so agreement here is
// transitively dense-identical without re-paying the dense solves.
func TestWarmEquivalenceGolden(t *testing.T) {
	for _, c := range equivCircuits(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			assertEngineAgreement(t, c, MinAreaAtMinPeriod, false)
		})
	}
}

// TestWarmEquivalenceRandomized is the breadth half of the PR8 equivalence
// contract: 100+ seeded random circuits mixing every register class, each
// solved by the cold sparse reference, the warm-started sparse engine, the
// arrival hybrid, and (every fourth trial, to bound the O(V²) oracle cost)
// the dense reference — all required byte-identical. Runs under -race in CI,
// so it also exercises the ladder's single-owner discipline.
func TestWarmEquivalenceRandomized(t *testing.T) {
	const trials = 104
	if testing.Short() {
		t.Skip("randomized equivalence suite is not -short")
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%03d", trial), func(t *testing.T) {
			t.Parallel()
			size := 60 + (trial*13)%140
			c := gen.Random(int64(1000+trial), size)
			obj := MinAreaAtMinPeriod
			if trial%3 == 1 {
				obj = MinPeriod
			}
			assertEngineAgreement(t, c, obj, trial%4 == 0)
		})
	}
}
