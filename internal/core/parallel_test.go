package core

import (
	"runtime"
	"strings"
	"testing"

	"mcretiming/internal/gen"
	"mcretiming/internal/hdlio"
	"mcretiming/internal/netlist"
	"mcretiming/internal/xc4000"
)

// circuitText serializes a circuit for bit-identical comparison.
func circuitText(t *testing.T, c *netlist.Circuit) string {
	t.Helper()
	var sb strings.Builder
	if err := hdlio.Write(&sb, c); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// parallelismLevels are the engine settings the determinism tests sweep:
// forced serial, two workers, and the GOMAXPROCS default.
func parallelismLevels() []int {
	levels := []int{1, 2}
	if gm := runtime.GOMAXPROCS(0); gm != 1 && gm != 2 {
		levels = append(levels, gm)
	}
	return levels
}

// TestRetimeParallelismDeterministic is the engine's whole-flow determinism
// contract: the retimed circuit and every result column of the report must be
// bit-identical at parallelism 1, 2, and GOMAXPROCS. Run with -race this is
// also the concurrency stress test over the mapped internal/gen profiles —
// all parallel stages (W/D rows, bounds sweeps, sharing analysis, period-cut
// trace-back, justification domains) execute under the race detector.
func TestRetimeParallelismDeterministic(t *testing.T) {
	for _, c := range equivCircuits(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			ref, refRep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			refText := circuitText(t, ref)
			for _, p := range parallelismLevels()[1:] {
				out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod, Parallelism: p})
				if err != nil {
					t.Fatalf("parallelism %d: %v", p, err)
				}
				if got := circuitText(t, out); got != refText {
					t.Fatalf("parallelism %d: retimed circuit differs from serial result", p)
				}
				if rep.PeriodAfter != refRep.PeriodAfter || rep.RegsAfter != refRep.RegsAfter ||
					rep.StepsMoved != refRep.StepsMoved || rep.StepsPossible != refRep.StepsPossible ||
					rep.NumClasses != refRep.NumClasses ||
					rep.JustifyLocal != refRep.JustifyLocal || rep.JustifyGlobal != refRep.JustifyGlobal ||
					rep.Retries != refRep.Retries {
					t.Fatalf("parallelism %d: report diverged: %+v vs %+v", p, rep, refRep)
				}
				if rep.Workers != p {
					t.Fatalf("parallelism %d: Report.Workers = %d", p, rep.Workers)
				}
			}
		})
	}
}

// TestRetimeParallelismDefault checks Parallelism 0 resolves to GOMAXPROCS.
func TestRetimeParallelismDefault(t *testing.T) {
	c, err := gen.Circuit(1)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := xc4000.Map(xc4000.DecomposeSyncResets(c))
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Retime(mapped, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); rep.Workers != want {
		t.Fatalf("Report.Workers = %d, want GOMAXPROCS (%d)", rep.Workers, want)
	}
}
