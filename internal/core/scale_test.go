package core

import (
	"context"
	"os"
	"slices"
	"testing"
	"time"

	"mcretiming/internal/gen"
	"mcretiming/internal/graph"
	"mcretiming/internal/mcgraph"
)

// retimeScale runs the full MinAreaAtMinPeriod flow on a scale-family
// pipeline and fails if any dense W/D matrix was materialized: the matrix-
// free engine's defining property at scale, enforced through the ComputeWD
// count hook. Returns the report for shape assertions.
func retimeScale(t *testing.T, width, stages int) *Report {
	t.Helper()
	c, err := gen.ScalePipeline(1, width, stages, gen.ClassMix{Plain: 1, EN: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := graph.WDComputeCount()
	out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no output circuit")
	}
	if d := graph.WDComputeCount() - before; d != 0 {
		t.Fatalf("solve materialized %d dense W/D matrices; the sparse engine must not allocate any", d)
	}
	if rep.Engine != "sparse" {
		t.Fatalf("engine = %q, want sparse", rep.Engine)
	}
	// Alternating depth-1/depth-3 stages: the as-built critical path is three
	// gate levels, the balanced optimum two — retiming must improve the
	// period.
	if rep.PeriodAfter >= rep.PeriodBefore {
		t.Fatalf("period %d -> %d: scale pipeline was not improved", rep.PeriodBefore, rep.PeriodAfter)
	}
	return rep
}

// TestScaleSmoke is the always-on scale guard: a few-thousand-vertex pipeline
// solves matrix-free. Cheap enough for every `go test` run.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short")
	}
	retimeScale(t, 16, 200)
}

// TestScaleLarge is the ≥50k-vertex scale acceptance run, gated behind
// MCRETIMING_SCALE=1 (the CI scale-smoke job sets it): minperiod + minarea +
// relocation on a 64×600 pipeline — ~76.8k gates, so ≥76.8k solver vertices —
// with zero dense W/D allocations. A dense engine would need ~70 GB for the
// two V² int64/int32 matrices here; the sparse engine's working set is
// O(V+E), and the whole flow runs in seconds (the CLI retimes a 100k-gate
// pipeline in about a minute on one core).
func TestScaleLarge(t *testing.T) {
	if os.Getenv("MCRETIMING_SCALE") == "" {
		t.Skip("set MCRETIMING_SCALE=1 to run the ≥50k-vertex scale acceptance test")
	}
	rep := retimeScale(t, 64, 600)
	t.Logf("scale: period %d -> %d ps, regs %d -> %d, workers %d",
		rep.PeriodBefore, rep.PeriodAfter, rep.RegsBefore, rep.RegsAfter, rep.Workers)
}

// TestScaleHuge is the PR8 10⁶-vertex acceptance run, gated behind
// MCRETIMING_SCALE=1 like TestScaleLarge. It solves minperiod on a
// million-vertex scale pipeline at the graph level — warm-started, cold, and
// with the arrival hybrid — and requires all three bit-identical, under a
// wall-clock budget that keeps the CI scale-smoke job honest.
//
// Two deliberate scopings:
//
//   - Graph level (mcgraph.Build → ToGraph → MinPeriod*, nil bounds), not the
//     full Retime flow: the §5.1 bounds pass (ComputeBoundsPar) is a
//     unit-step worklist whose work grows with vertex count × pipeline depth,
//     and at 10⁶ vertices it alone blows any CI budget. The solve core — the
//     part PR8 scales — is what this test measures; the bounds pass is
//     tracked as an open item in ROADMAP.md.
//   - A wide-shallow pipeline (2000×250), not a deep one: SPFA label
//     displacement grows with pipeline depth under nil bounds, so a 100×5000
//     pipeline spends minutes per probe moving labels thousands of steps.
//     Wide-and-shallow is the shape that isolates vertex-count scaling.
func TestScaleHuge(t *testing.T) {
	if os.Getenv("MCRETIMING_SCALE") == "" {
		t.Skip("set MCRETIMING_SCALE=1 to run the 10⁶-vertex scale acceptance test")
	}
	const budget = 10 * time.Minute
	start := time.Now()
	c, err := gen.ScalePipeline(1, 2000, 250, gen.ClassMix{Plain: 1, EN: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mcgraph.Build(c)
	if err != nil {
		t.Fatal(err)
	}
	g := m.ToGraph()
	if n := g.NumVertices(); n < 1_000_000 {
		t.Fatalf("profile has %d vertices, want ≥ 10⁶", n)
	}
	ctx := context.Background()

	cs0 := graph.ColdStartCount()
	t0 := time.Now()
	phiW, rW, err := g.MinPeriodLazyEng(ctx, nil, nil, &graph.Engine{Workers: 1, Ladder: graph.NewProbeLadder()})
	if err != nil {
		t.Fatal(err)
	}
	warmWall := time.Since(t0)
	if d := graph.ColdStartCount() - cs0; d != 1 {
		t.Fatalf("warm search performed %d cold SPFA starts, want exactly 1", d)
	}

	t0 = time.Now()
	phiC, rC, err := g.MinPeriodLazyEng(ctx, nil, nil, &graph.Engine{Workers: 1, ColdProbes: true})
	if err != nil {
		t.Fatal(err)
	}
	coldWall := time.Since(t0)
	if phiW != phiC || !slices.Equal(rW, rC) {
		t.Fatalf("warm minperiod diverged from cold: phi %d vs %d", phiW, phiC)
	}

	t0 = time.Now()
	phiA, rA, err := g.MinPeriodArrivalEng(ctx, nil, nil, &graph.Engine{Workers: 1, Ladder: graph.NewProbeLadder()})
	if err != nil {
		t.Fatal(err)
	}
	arrWall := time.Since(t0)
	if phiA != phiC || !slices.Equal(rA, rC) {
		t.Fatalf("arrival minperiod diverged from cold: phi %d vs %d", phiA, phiC)
	}

	total := time.Since(start)
	t.Logf("huge: %d vertices, phi=%d ps, warm=%v cold=%v arrival=%v total=%v",
		g.NumVertices(), phiC, warmWall, coldWall, arrWall, total)
	if total > budget {
		t.Fatalf("10⁶-vertex run took %v, budget %v", total, budget)
	}
}
