package core

import (
	"os"
	"testing"

	"mcretiming/internal/gen"
	"mcretiming/internal/graph"
)

// retimeScale runs the full MinAreaAtMinPeriod flow on a scale-family
// pipeline and fails if any dense W/D matrix was materialized: the matrix-
// free engine's defining property at scale, enforced through the ComputeWD
// count hook. Returns the report for shape assertions.
func retimeScale(t *testing.T, width, stages int) *Report {
	t.Helper()
	c, err := gen.ScalePipeline(1, width, stages, gen.ClassMix{Plain: 1, EN: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := graph.WDComputeCount()
	out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no output circuit")
	}
	if d := graph.WDComputeCount() - before; d != 0 {
		t.Fatalf("solve materialized %d dense W/D matrices; the sparse engine must not allocate any", d)
	}
	if rep.Engine != "sparse" {
		t.Fatalf("engine = %q, want sparse", rep.Engine)
	}
	// Alternating depth-1/depth-3 stages: the as-built critical path is three
	// gate levels, the balanced optimum two — retiming must improve the
	// period.
	if rep.PeriodAfter >= rep.PeriodBefore {
		t.Fatalf("period %d -> %d: scale pipeline was not improved", rep.PeriodBefore, rep.PeriodAfter)
	}
	return rep
}

// TestScaleSmoke is the always-on scale guard: a few-thousand-vertex pipeline
// solves matrix-free. Cheap enough for every `go test` run.
func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short")
	}
	retimeScale(t, 16, 200)
}

// TestScaleLarge is the ≥50k-vertex scale acceptance run, gated behind
// MCRETIMING_SCALE=1 (the CI scale-smoke job sets it): minperiod + minarea +
// relocation on a 64×600 pipeline — ~76.8k gates, so ≥76.8k solver vertices —
// with zero dense W/D allocations. A dense engine would need ~70 GB for the
// two V² int64/int32 matrices here; the sparse engine's working set is
// O(V+E), and the whole flow runs in seconds (the CLI retimes a 100k-gate
// pipeline in about a minute on one core).
func TestScaleLarge(t *testing.T) {
	if os.Getenv("MCRETIMING_SCALE") == "" {
		t.Skip("set MCRETIMING_SCALE=1 to run the ≥50k-vertex scale acceptance test")
	}
	rep := retimeScale(t, 64, 600)
	t.Logf("scale: period %d -> %d ps, regs %d -> %d, workers %d",
		rep.PeriodBefore, rep.PeriodAfter, rep.RegsBefore, rep.RegsAfter, rep.Workers)
}
