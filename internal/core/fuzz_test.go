package core

import (
	"fmt"
	"math/rand"
	"testing"

	"mcretiming/internal/bmc"
	"mcretiming/internal/logic"
	"mcretiming/internal/netlist"
	"mcretiming/internal/verify"
)

// randomSequentialCircuit builds a random synchronous circuit with a mix of
// register classes (plain, enabled, sync-reset, async-reset, combinations),
// every register output consumed, and no dangling logic.
func randomSequentialCircuit(rng *rand.Rand, nGates int) *netlist.Circuit {
	c := netlist.New(fmt.Sprintf("fuzz%d", rng.Int31()))
	clk := c.AddInput("clk")
	en1 := c.AddInput("en1")
	en2 := c.AddInput("en2")
	rst := c.AddInput("rst")
	arst := c.AddInput("arst")

	pool := []netlist.SignalID{
		c.AddInput("a"), c.AddInput("b"), c.AddInput("c"), c.AddInput("d"),
	}
	types := []netlist.GateType{
		netlist.And, netlist.Or, netlist.Nand, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Mux,
	}
	randBit := func() logic.Bit { return logic.Bit(rng.Intn(3)) }

	for i := 0; i < nGates; i++ {
		gt := types[rng.Intn(len(types))]
		var n int
		switch gt {
		case netlist.Not:
			n = 1
		case netlist.Mux:
			n = 3
		default:
			n = 2 + rng.Intn(2)
		}
		in := make([]netlist.SignalID, n)
		for j := range in {
			in[j] = pool[rng.Intn(len(pool))]
		}
		_, o := c.AddGate("", gt, in, int64(1000+rng.Intn(8)*1000))
		pool = append(pool, o)

		if rng.Intn(3) == 0 {
			rid, q := c.AddReg("", o, clk)
			r := &c.Regs[rid]
			switch rng.Intn(6) {
			case 0: // plain
			case 1:
				r.EN = en1
			case 2:
				r.EN = en2
				r.SR = rst
				r.SRVal = randBit()
			case 3:
				r.SR = rst
				r.SRVal = randBit()
			case 4:
				r.AR = arst
				r.ARVal = randBit()
			case 5:
				r.EN = en1
				r.AR = arst
				r.ARVal = randBit()
			}
			pool = append(pool, q)
		}
	}
	// Consume everything: every otherwise-unused signal feeds an output
	// reduction so no register dangles.
	used := make([]bool, len(c.Signals))
	c.LiveGates(func(g *netlist.Gate) {
		for _, in := range g.In {
			used[in] = true
		}
	})
	c.LiveRegs(func(r *netlist.Reg) { used[r.D] = true })
	var loose []netlist.SignalID
	for i := range c.Signals {
		sig := netlist.SignalID(i)
		d := c.Signals[i].Driver
		if !used[i] && (d.Kind == netlist.DriverGate || d.Kind == netlist.DriverReg) {
			loose = append(loose, sig)
		}
	}
	for len(loose) > 1 {
		var next []netlist.SignalID
		for i := 0; i < len(loose); i += 3 {
			end := i + 3
			if end > len(loose) {
				end = len(loose)
			}
			if end-i == 1 {
				next = append(next, loose[i])
				continue
			}
			_, o := c.AddGate("", netlist.Xor, loose[i:end], 1000)
			next = append(next, o)
		}
		loose = next
	}
	if len(loose) == 1 {
		c.MarkOutput(loose[0])
	}
	// Plus a couple of direct taps.
	c.MarkOutput(pool[len(pool)-1])
	c.MarkOutput(pool[len(pool)/2])
	return c
}

// The central correctness property of the whole system: any circuit the
// generator produces, retimed under any objective, must remain sequentially
// equivalent to the original.
func TestRandomCircuitsRetimeEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	objectives := []Objective{MinPeriod, MinAreaAtMinPeriod}
	bias := map[string]float64{"en1": 0.8, "en2": 0.7, "rst": 0.2, "arst": 0.15}
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for iter := 0; iter < iters; iter++ {
		c := randomSequentialCircuit(rng, 25+rng.Intn(50))
		if err := c.Validate(); err != nil {
			t.Fatalf("iter %d: generator bug: %v", iter, err)
		}
		if c.NumRegs() == 0 {
			continue
		}
		obj := objectives[iter%len(objectives)]
		out, rep, err := Retime(c, Options{Objective: obj, SATJustify: iter%3 == 0})
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, c.Name, err)
		}
		if rep.PeriodAfter > rep.PeriodBefore {
			t.Errorf("iter %d: period worsened %d -> %d", iter, rep.PeriodBefore, rep.PeriodAfter)
		}
		skip := c.NumRegs() + 2
		res, err := verify.Equivalent(c, out, verify.Stimulus{
			Cycles: skip + 48, Seqs: 4, Skip: skip,
			Seed: int64(iter), Bias: bias,
		})
		if err != nil {
			t.Fatalf("iter %d (%s, obj %d): NOT EQUIVALENT: %v", iter, c.Name, obj, err)
		}
		if res.Compared == 0 {
			t.Logf("iter %d: warning: no known-vs-known samples (deeply X circuit)", iter)
		}
		// Every few iterations, upgrade the random check to a bounded
		// PROOF over all input sequences.
		if iter%10 == 0 && c.NumRegs() <= 12 {
			pr, err := bmc.Check(c, out, bmc.Options{Depth: 6})
			if err != nil {
				t.Fatalf("iter %d: bmc: %v", iter, err)
			}
			if !pr.Equivalent {
				t.Fatalf("iter %d: BMC found mismatch at cycle %d output %d",
					iter, pr.Cycle, pr.Output)
			}
		}
	}
}

// Retiming twice must keep equivalence and never worsen the period
// (idempotence of the fixpoint).
func TestRetimeTwiceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		c := randomSequentialCircuit(rng, 40)
		if c.NumRegs() == 0 {
			continue
		}
		once, rep1, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		twice, rep2, err := Retime(once, Options{Objective: MinAreaAtMinPeriod})
		if err != nil {
			t.Fatalf("iter %d: second retime: %v", iter, err)
		}
		if rep2.PeriodAfter > rep1.PeriodAfter {
			t.Errorf("iter %d: second retime worsened period %d -> %d",
				iter, rep1.PeriodAfter, rep2.PeriodAfter)
		}
		skip := c.NumRegs() + twice.NumRegs() + 2
		if _, err := verify.Equivalent(c, twice, verify.Stimulus{
			Cycles: skip + 40, Seqs: 3, Skip: skip, Seed: int64(iter),
			Bias: map[string]float64{"en1": 0.8, "en2": 0.7, "rst": 0.2, "arst": 0.15},
		}); err != nil {
			t.Fatalf("iter %d: double retime not equivalent: %v", iter, err)
		}
	}
}
