package core

import (
	"math/rand"
	"testing"

	"mcretiming/internal/bmc"
	"mcretiming/internal/gen"
	"mcretiming/internal/verify"
)

// The central correctness property of the whole system: any circuit the
// generator produces, retimed under any objective, must remain sequentially
// equivalent to the original.
func TestRandomCircuitsRetimeEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	objectives := []Objective{MinPeriod, MinAreaAtMinPeriod}
	bias := map[string]float64{"en1": 0.8, "en2": 0.7, "rst": 0.2, "arst": 0.15}
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for iter := 0; iter < iters; iter++ {
		c := gen.Random(rng.Int63(), 25+rng.Intn(50))
		if err := c.Validate(); err != nil {
			t.Fatalf("iter %d: generator bug: %v", iter, err)
		}
		if c.NumRegs() == 0 {
			continue
		}
		obj := objectives[iter%len(objectives)]
		out, rep, err := Retime(c, Options{Objective: obj, SATJustify: iter%3 == 0})
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, c.Name, err)
		}
		if rep.PeriodAfter > rep.PeriodBefore {
			t.Errorf("iter %d: period worsened %d -> %d", iter, rep.PeriodBefore, rep.PeriodAfter)
		}
		skip := c.NumRegs() + 2
		res, err := verify.Equivalent(c, out, verify.Stimulus{
			Cycles: skip + 48, Seqs: 4, Skip: skip,
			Seed: int64(iter), Bias: bias,
		})
		if err != nil {
			t.Fatalf("iter %d (%s, obj %d): NOT EQUIVALENT: %v", iter, c.Name, obj, err)
		}
		if res.Compared == 0 {
			t.Logf("iter %d: warning: no known-vs-known samples (deeply X circuit)", iter)
		}
		// Every few iterations, upgrade the random check to a bounded
		// PROOF over all input sequences.
		if iter%10 == 0 && c.NumRegs() <= 12 {
			pr, err := bmc.Check(c, out, bmc.Options{Depth: 6})
			if err != nil {
				t.Fatalf("iter %d: bmc: %v", iter, err)
			}
			if !pr.Equivalent {
				t.Fatalf("iter %d: BMC found mismatch at cycle %d output %d",
					iter, pr.Cycle, pr.Output)
			}
		}
	}
}

// FuzzRetimeVerify is the retime-then-verify round-trip fuzzer: a seed and a
// size drive the internal/gen random sequential circuit generator, the
// circuit is retimed under a fuzzer-chosen objective and budget starvation,
// and the result must be sequentially equivalent to the input. The engine
// may degrade under tiny budgets but may neither crash nor return a wrong
// circuit; invariant checking is forced on by this test binary.
func FuzzRetimeVerify(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(0))
	f.Add(int64(2026), uint8(60), uint8(1))
	f.Add(int64(-7), uint8(12), uint8(2))
	f.Add(int64(424242), uint8(90), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, size, mode uint8) {
		c := gen.Random(seed, 10+int(size)%80)
		if c.NumRegs() == 0 {
			t.Skip("no registers to move")
		}
		opts := Options{Objective: MinAreaAtMinPeriod}
		switch mode % 4 {
		case 1:
			opts.Objective = MinPeriod
		case 2:
			opts.SATJustify = true
		case 3:
			opts.Budgets = Budgets{BDDNodes: 64, SATConflicts: 64, FlowAugmentations: 256, MinAreaRounds: 4}
		}
		out, rep, err := Retime(c, opts)
		if err != nil {
			t.Fatalf("%s (mode %d): %v", c.Name, mode%4, err)
		}
		if rep.PeriodAfter > rep.PeriodBefore {
			t.Fatalf("%s: period worsened %d -> %d", c.Name, rep.PeriodBefore, rep.PeriodAfter)
		}
		skip := c.NumRegs() + out.NumRegs() + 2
		if _, err := verify.Equivalent(c, out, verify.Stimulus{
			Cycles: skip + 32, Seqs: 2, Skip: skip, Seed: seed,
			Bias: map[string]float64{"en1": 0.8, "en2": 0.7, "rst": 0.2, "arst": 0.15},
		}); err != nil {
			t.Fatalf("%s (mode %d): NOT EQUIVALENT: %v", c.Name, mode%4, err)
		}
	})
}

// Retiming twice must keep equivalence and never worsen the period
// (idempotence of the fixpoint).
func TestRetimeTwiceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10; iter++ {
		c := gen.Random(rng.Int63(), 40)
		if c.NumRegs() == 0 {
			continue
		}
		once, rep1, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		twice, rep2, err := Retime(once, Options{Objective: MinAreaAtMinPeriod})
		if err != nil {
			t.Fatalf("iter %d: second retime: %v", iter, err)
		}
		if rep2.PeriodAfter > rep1.PeriodAfter {
			t.Errorf("iter %d: second retime worsened period %d -> %d",
				iter, rep1.PeriodAfter, rep2.PeriodAfter)
		}
		skip := c.NumRegs() + twice.NumRegs() + 2
		if _, err := verify.Equivalent(c, twice, verify.Stimulus{
			Cycles: skip + 40, Seqs: 3, Skip: skip, Seed: int64(iter),
			Bias: map[string]float64{"en1": 0.8, "en2": 0.7, "rst": 0.2, "arst": 0.15},
		}); err != nil {
			t.Fatalf("iter %d: double retime not equivalent: %v", iter, err)
		}
	}
}
