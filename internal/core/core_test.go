package core

import (
	"testing"

	"mcretiming/internal/logic"
	"mcretiming/internal/netlist"
	"mcretiming/internal/verify"
)

// fig1Circuit is the paper's Fig. 1a): two load-enable registers feeding an
// AND, then a slow gate; minperiod wants the layer moved forward.
func fig1Circuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("fig1")
	i1 := c.AddInput("i1")
	i2 := c.AddInput("i2")
	en := c.AddInput("en")
	clk := c.AddInput("clk")
	r1, q1 := c.AddReg("r1", i1, clk)
	r2, q2 := c.AddReg("r2", i2, clk)
	c.Regs[r1].EN = en
	c.Regs[r2].EN = en
	_, g := c.AddGate("g", netlist.And, []netlist.SignalID{q1, q2}, 1000)
	_, h1 := c.AddGate("h1", netlist.Not, []netlist.SignalID{g}, 5000)
	_, h2 := c.AddGate("h2", netlist.Not, []netlist.SignalID{h1}, 5000)
	c.MarkOutput(h2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFig1MinPeriodMovesEnableLayer(t *testing.T) {
	c := fig1Circuit(t)
	out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumClasses != 1 {
		t.Errorf("classes = %d, want 1", rep.NumClasses)
	}
	// Period: before = 1000+5000+5000 = 11000; the optimum puts the layer
	// between h1 and h2: max(1000+5000, 5000) = 6000.
	if rep.PeriodBefore != 11000 {
		t.Errorf("period before = %d, want 11000", rep.PeriodBefore)
	}
	if rep.PeriodAfter != 6000 {
		t.Errorf("period after = %d, want 6000", rep.PeriodAfter)
	}
	// Fig. 1b): one shared EN register, no extra logic.
	if out.NumRegs() != 1 {
		t.Errorf("registers = %d, want 1 (shared enable register)", out.NumRegs())
	}
	if out.NumGates() != c.NumGates() {
		t.Errorf("gates = %d, want %d", out.NumGates(), c.NumGates())
	}
	res, err := verify.Equivalent(c, out, verify.Stimulus{
		Skip: 4, Seed: 1, Bias: map[string]float64{"en": 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared == 0 {
		t.Error("equivalence check compared nothing")
	}
}

// An unbalanced plain pipeline: registers in the wrong place; retiming must
// rebalance and the result must stay sequentially equivalent.
func TestUnbalancedPipelineRebalanced(t *testing.T) {
	c := netlist.New("pipe")
	in := c.AddInput("in")
	clk := c.AddInput("clk")
	_, q1 := c.AddReg("r1", in, clk)
	sig := q1
	delays := []int64{1000, 8000, 1000, 8000}
	for i, d := range delays {
		_, sig = c.AddGate("", netlist.Not, []netlist.SignalID{sig}, d)
		if i == 0 {
			// A register right after the first (cheap) gate: badly placed.
			_, sig = c.AddReg("r2", sig, clk)
		}
	}
	c.MarkOutput(sig)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeriodAfter >= rep.PeriodBefore {
		t.Errorf("period did not improve: %d -> %d", rep.PeriodBefore, rep.PeriodAfter)
	}
	if rep.PeriodAfter > 9000 {
		t.Errorf("period after = %d, want <= 9000 (8000+1000)", rep.PeriodAfter)
	}
	if _, err := verify.Equivalent(c, out, verify.Stimulus{Skip: 6, Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

// Sync-clear registers moved backward: justification must produce equivalent
// reset values, verified by simulation with reset pulses.
func TestSyncResetBackwardEquivalent(t *testing.T) {
	c := netlist.New("srb")
	a := c.AddInput("a")
	b := c.AddInput("b")
	clk := c.AddInput("clk")
	rst := c.AddInput("rst")
	_, g1 := c.AddGate("g1", netlist.Xor, []netlist.SignalID{a, b}, 9000)
	_, g2 := c.AddGate("g2", netlist.Nand, []netlist.SignalID{g1, a}, 1000)
	r1, q1 := c.AddReg("r1", g2, clk)
	c.Regs[r1].SR = rst
	c.Regs[r1].SRVal = logic.B1
	_, o := c.AddGate("g3", netlist.Not, []netlist.SignalID{q1}, 1000)
	c.MarkOutput(o)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeriodAfter >= rep.PeriodBefore {
		t.Errorf("period did not improve: %d -> %d", rep.PeriodBefore, rep.PeriodAfter)
	}
	res, err := verify.Equivalent(c, out, verify.Stimulus{
		Skip: 3, Seed: 3, Cycles: 48, Seqs: 16,
		Bias: map[string]float64{"rst": 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared == 0 {
		t.Error("equivalence check compared nothing")
	}
	if rep.JustifyLocal == 0 {
		t.Error("expected local justification steps")
	}
}

// Async-clear registers: the class includes the async control; moving the
// layer keeps behaviour (async reset forces both circuits identically).
func TestAsyncClearForwardEquivalent(t *testing.T) {
	c := netlist.New("ac")
	i1 := c.AddInput("i1")
	i2 := c.AddInput("i2")
	clk := c.AddInput("clk")
	arst := c.AddInput("arst")
	mk := func(name string, d netlist.SignalID, v logic.Bit) netlist.SignalID {
		r, q := c.AddReg(name, d, clk)
		c.Regs[r].AR = arst
		c.Regs[r].ARVal = v
		return q
	}
	q1 := mk("r1", i1, logic.B0)
	q2 := mk("r2", i2, logic.B1)
	_, g := c.AddGate("g", netlist.Or, []netlist.SignalID{q1, q2}, 1000)
	_, h := c.AddGate("h", netlist.Xnor, []netlist.SignalID{g, g}, 9000)
	c.MarkOutput(h)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeriodAfter >= rep.PeriodBefore {
		t.Errorf("period did not improve: %d -> %d", rep.PeriodBefore, rep.PeriodAfter)
	}
	// The forward-implied async value: OR(0,1) = 1.
	found := false
	out.LiveRegs(func(rg *netlist.Reg) {
		if rg.HasAR() && rg.ARVal == logic.B1 {
			found = true
		}
	})
	if !found {
		t.Error("no register with implied async value 1")
	}
	if _, err := verify.Equivalent(c, out, verify.Stimulus{
		Skip: 3, Seed: 4, Bias: map[string]float64{"arst": 0.2},
	}); err != nil {
		t.Fatal(err)
	}
}

// Mixed classes in one circuit: retiming must respect the class boundaries
// and still verify.
func TestMixedClassesEndToEnd(t *testing.T) {
	c := netlist.New("mixed")
	in := c.AddInput("in")
	en := c.AddInput("en")
	clk := c.AddInput("clk")
	rst := c.AddInput("rst")

	r1, q1 := c.AddReg("r1", in, clk)
	c.Regs[r1].EN = en
	_, g1 := c.AddGate("g1", netlist.Not, []netlist.SignalID{q1}, 6000)
	r2, q2 := c.AddReg("r2", g1, clk)
	c.Regs[r2].SR = rst
	c.Regs[r2].SRVal = logic.B0
	_, g2 := c.AddGate("g2", netlist.Not, []netlist.SignalID{q2}, 6000)
	_, q3 := c.AddReg("r3", g2, clk)
	_, g3 := c.AddGate("g3", netlist.Not, []netlist.SignalID{q3}, 1000)
	c.MarkOutput(g3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumClasses != 3 {
		t.Errorf("classes = %d, want 3", rep.NumClasses)
	}
	if _, err := verify.Equivalent(c, out, verify.Stimulus{
		Skip: 6, Seed: 5, Cycles: 64, Seqs: 12,
		Bias: map[string]float64{"en": 0.8, "rst": 0.2},
	}); err != nil {
		t.Fatal(err)
	}
}

// The conflict circuit from the justify tests: core must retry with a
// tightened bound and still produce a valid, equivalent result.
func TestConflictRetryLoop(t *testing.T) {
	c := netlist.New("retry")
	a := c.AddInput("a")
	b := c.AddInput("b")
	clk := c.AddInput("clk")
	rst := c.AddInput("rst")
	_, z := c.AddGate("v2", netlist.And, []netlist.SignalID{a, b}, 8000)
	_, o3 := c.AddGate("v3", netlist.Nand, []netlist.SignalID{z}, 1000)
	_, o4 := c.AddGate("v4", netlist.Not, []netlist.SignalID{z}, 1000)
	r3, q3 := c.AddReg("r3", o3, clk)
	c.Regs[r3].SR = rst
	c.Regs[r3].SRVal = logic.B0
	r4, q4 := c.AddReg("r4", o4, clk)
	c.Regs[r4].SR = rst
	c.Regs[r4].SRVal = logic.B1
	_, e3 := c.AddGate("g5", netlist.Not, []netlist.SignalID{q3}, 1000)
	_, e4 := c.AddGate("g6", netlist.Not, []netlist.SignalID{q4}, 1000)
	c.MarkOutput(e3)
	c.MarkOutput(e4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	out, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Equivalent(c, out, verify.Stimulus{
		Skip: 4, Seed: 6, Bias: map[string]float64{"rst": 0.3},
	}); err != nil {
		t.Fatal(err)
	}
	t.Logf("retries=%d conflicts=%d period %d->%d",
		rep.Retries, rep.JustifyConflicts, rep.PeriodBefore, rep.PeriodAfter)
}

func TestMinPeriodObjective(t *testing.T) {
	c := fig1Circuit(t)
	out, rep, err := Retime(c, Options{Objective: MinPeriod})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeriodAfter != 6000 {
		t.Errorf("minperiod = %d, want 6000", rep.PeriodAfter)
	}
	if _, err := verify.Equivalent(c, out, verify.Stimulus{Skip: 4, Seed: 7}); err != nil {
		t.Fatal(err)
	}
}

func TestMinAreaAtExplicitPeriod(t *testing.T) {
	c := fig1Circuit(t)
	out, rep, err := Retime(c, Options{Objective: MinAreaAtPeriod, TargetPeriod: 11000})
	if err != nil {
		t.Fatal(err)
	}
	// At the relaxed period nothing needs to move: registers stay at 2 or
	// fewer (minarea may still share).
	if out.NumRegs() > 2 {
		t.Errorf("regs = %d, want <= 2", out.NumRegs())
	}
	if rep.PeriodAfter != 11000 {
		t.Errorf("reported period = %d, want 11000", rep.PeriodAfter)
	}
}

func TestInfeasibleTargetPeriod(t *testing.T) {
	c := fig1Circuit(t)
	if _, _, err := Retime(c, Options{Objective: MinAreaAtPeriod, TargetPeriod: 1}); err == nil {
		t.Fatal("infeasible target accepted")
	}
}
