package core

import (
	"testing"

	"mcretiming/internal/gen"
	"mcretiming/internal/netlist"
	"mcretiming/internal/xc4000"
)

// equivCircuits builds the engine-equivalence golden suite: mapped profiles
// covering plain pipelines (C2), async-reset + justification-heavy structure
// (C6) and sharing-heavy many-class structure (C7), plus a seeded random
// circuit mixing every register class.
func equivCircuits(t *testing.T) []*netlist.Circuit {
	t.Helper()
	var circuits []*netlist.Circuit
	for _, i := range []int{2, 6, 7} {
		c, err := gen.Circuit(i)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := xc4000.Map(xc4000.DecomposeSyncResets(c.Clone()))
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, mapped)
	}
	return append(circuits, gen.Random(42, 300))
}

// TestEngineEquivalence is the sparse core's correctness anchor: on the
// golden suite, the matrix-free engine must produce a circuit bit-identical
// to the dense W/D reference engine — at every parallelism level, for both
// objectives that exercise the solve core. The engines share relocation and
// justification, so any divergence localizes to the period/area solvers.
func TestEngineEquivalence(t *testing.T) {
	for _, c := range equivCircuits(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			// MinAreaAtMinPeriod runs the full solve core (minperiod then
			// minarea), so it alone pins both solvers; the extra MinPeriod-
			// objective pass doubles the dense reference cost for little new
			// coverage, so the big golden (mapped C6, ~60 s per dense solve)
			// skips it.
			objectives := []Objective{MinPeriod, MinAreaAtMinPeriod}
			if c.NumGates()+c.NumRegs() > 2000 {
				objectives = objectives[1:]
			}
			for _, obj := range objectives {
				ref, refRep, err := Retime(c, Options{Objective: obj, Engine: EngineDense, Parallelism: 1})
				if err != nil {
					t.Fatalf("%v dense: %v", obj, err)
				}
				if refRep.Engine != "dense" {
					t.Fatalf("%v dense: Report.Engine = %q", obj, refRep.Engine)
				}
				refText := circuitText(t, ref)
				for _, p := range parallelismLevels() {
					out, rep, err := Retime(c, Options{Objective: obj, Engine: EngineSparse, Parallelism: p})
					if err != nil {
						t.Fatalf("%v sparse j=%d: %v", obj, p, err)
					}
					if rep.Engine != "sparse" {
						t.Fatalf("%v sparse j=%d: Report.Engine = %q", obj, p, rep.Engine)
					}
					if got := circuitText(t, out); got != refText {
						t.Fatalf("%v sparse j=%d: circuit differs from the dense reference", obj, p)
					}
					if rep.PeriodAfter != refRep.PeriodAfter || rep.RegsAfter != refRep.RegsAfter ||
						rep.StepsMoved != refRep.StepsMoved || rep.NumClasses != refRep.NumClasses ||
						rep.JustifyLocal != refRep.JustifyLocal || rep.JustifyGlobal != refRep.JustifyGlobal {
						t.Fatalf("%v sparse j=%d: report diverged: %+v vs %+v", obj, p, rep, refRep)
					}
				}
			}
		})
	}
}

// TestEngineAutoMatchesSparse pins EngineAuto to the sparse result (the
// store's fingerprint folds auto and sparse into one keyspace on the strength
// of this): auto may add a dense cross-check, but the circuit it returns must
// be the sparse engine's, bit for bit.
func TestEngineAutoMatchesSparse(t *testing.T) {
	for _, c := range equivCircuits(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			sparse, _, err := Retime(c, Options{Objective: MinAreaAtMinPeriod, Engine: EngineSparse})
			if err != nil {
				t.Fatal(err)
			}
			auto, rep, err := Retime(c, Options{Objective: MinAreaAtMinPeriod, Engine: EngineAuto})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Engine != "sparse" {
				t.Fatalf("auto Report.Engine = %q, want sparse", rep.Engine)
			}
			if circuitText(t, auto) != circuitText(t, sparse) {
				t.Fatal("EngineAuto circuit differs from EngineSparse")
			}
		})
	}
}
