package logic

import (
	"testing"
	"testing/quick"
)

func TestBitString(t *testing.T) {
	if B0.String() != "0" || B1.String() != "1" || BX.String() != "x" {
		t.Error("Bit.String wrong")
	}
}

func TestKnownAndBool(t *testing.T) {
	if !B0.Known() || !B1.Known() || BX.Known() {
		t.Error("Known wrong")
	}
	if B0.Bool() || !B1.Bool() {
		t.Error("Bool wrong")
	}
	if BX.Bool() {
		t.Error("Bool(BX) must map the unknown value to false")
	}
}

func TestFromBoolRoundTrip(t *testing.T) {
	f := func(v bool) bool { return FromBool(v).Bool() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Ternary operators must agree with Boolean ones on known inputs.
func TestTernaryMatchesBooleanOnKnown(t *testing.T) {
	bits := []Bit{B0, B1}
	for _, a := range bits {
		for _, b := range bits {
			if And(a, b) != FromBool(a.Bool() && b.Bool()) {
				t.Errorf("And(%v,%v)", a, b)
			}
			if Or(a, b) != FromBool(a.Bool() || b.Bool()) {
				t.Errorf("Or(%v,%v)", a, b)
			}
			if Xor(a, b) != FromBool(a.Bool() != b.Bool()) {
				t.Errorf("Xor(%v,%v)", a, b)
			}
		}
		if Not(a) != FromBool(!a.Bool()) {
			t.Errorf("Not(%v)", a)
		}
	}
}

// X must behave monotonically: if an operator is known with an X input, it
// must stay the same for both refinements of that X.
func TestXMonotonicity(t *testing.T) {
	all := []Bit{B0, B1, BX}
	refine := func(b Bit) []Bit {
		if b == BX {
			return []Bit{B0, B1}
		}
		return []Bit{b}
	}
	for _, a := range all {
		for _, b := range all {
			ops := []struct {
				name string
				f    func(...Bit) Bit
			}{{"and", And}, {"or", Or}, {"xor", Xor}}
			for _, op := range ops {
				out := op.f(a, b)
				if out == BX {
					continue
				}
				for _, ra := range refine(a) {
					for _, rb := range refine(b) {
						if op.f(ra, rb) != out {
							t.Errorf("%s(%v,%v)=%v not preserved at (%v,%v)",
								op.name, a, b, out, ra, rb)
						}
					}
				}
			}
		}
	}
}

func TestMuxControllingCases(t *testing.T) {
	if Mux(B0, B1, B0) != B1 {
		t.Error("Mux sel=0 should pick a")
	}
	if Mux(B1, B1, B0) != B0 {
		t.Error("Mux sel=1 should pick b")
	}
	if Mux(BX, B1, B1) != B1 {
		t.Error("Mux X-sel with agreeing data should be known")
	}
	if Mux(BX, B1, B0) != BX {
		t.Error("Mux X-sel with differing data should be X")
	}
}

func TestAndOrControllingValues(t *testing.T) {
	if And(B0, BX) != B0 {
		t.Error("And with 0 must be 0 regardless of X")
	}
	if Or(B1, BX) != B1 {
		t.Error("Or with 1 must be 1 regardless of X")
	}
	if And(B1, BX) != BX || Or(B0, BX) != BX {
		t.Error("non-controlling inputs must keep X")
	}
	if Xor(B1, BX) != BX {
		t.Error("Xor with any X must be X")
	}
}

func TestCompatibleAndMeet(t *testing.T) {
	cases := []struct {
		a, b Bit
		comp bool
		meet Bit
		ok   bool
	}{
		{B0, B0, true, B0, true},
		{B1, B1, true, B1, true},
		{B0, B1, false, BX, false},
		{B0, BX, true, B0, true},
		{BX, B1, true, B1, true},
		{BX, BX, true, BX, true},
	}
	for _, tc := range cases {
		if got := Compatible(tc.a, tc.b); got != tc.comp {
			t.Errorf("Compatible(%v,%v) = %v", tc.a, tc.b, got)
		}
		m, ok := Meet(tc.a, tc.b)
		if ok != tc.ok || (ok && m != tc.meet) {
			t.Errorf("Meet(%v,%v) = %v,%v want %v,%v", tc.a, tc.b, m, ok, tc.meet, tc.ok)
		}
	}
}

func TestVariadicIdentities(t *testing.T) {
	if And() != B1 {
		t.Error("empty And should be 1")
	}
	if Or() != B0 {
		t.Error("empty Or should be 0")
	}
	if Xor() != B0 {
		t.Error("empty Xor should be 0")
	}
	if Xor(B1, B1, B1) != B1 {
		t.Error("odd-parity Xor wrong")
	}
}
