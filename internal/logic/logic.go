// Package logic provides two- and three-valued Boolean algebra shared by the
// netlist model, the simulator, and reset-state justification.
//
// The third value X models an unknown or don't-care level, following the
// usual ternary (Kleene) extension: an operator output is X only if the
// known inputs do not already determine it.
package logic

import "fmt"

// Bit is a ternary logic value: 0, 1, or X (unknown / don't-care).
type Bit uint8

// The three logic values. The zero value of Bit is B0.
const (
	B0 Bit = iota // logic 0
	B1            // logic 1
	BX            // unknown / don't-care ("-" in the paper's register labels)
)

// String returns "0", "1" or "x".
func (b Bit) String() string {
	switch b {
	case B0:
		return "0"
	case B1:
		return "1"
	case BX:
		return "x"
	}
	return fmt.Sprintf("Bit(%d)", uint8(b))
}

// Known reports whether b is a definite 0 or 1.
func (b Bit) Known() bool { return b == B0 || b == B1 }

// FromBool converts a Go bool to a Bit.
func FromBool(v bool) Bit {
	if v {
		return B1
	}
	return B0
}

// Bool converts a Bit to a Go bool. BX maps to false — callers that must
// distinguish the unknown value check Known first.
func (b Bit) Bool() bool { return b == B1 }

// Not returns the ternary complement of b.
func Not(b Bit) Bit {
	switch b {
	case B0:
		return B1
	case B1:
		return B0
	}
	return BX
}

// And returns the ternary conjunction of bits.
func And(bits ...Bit) Bit {
	out := B1
	for _, b := range bits {
		switch b {
		case B0:
			return B0
		case BX:
			out = BX
		}
	}
	return out
}

// Or returns the ternary disjunction of bits.
func Or(bits ...Bit) Bit {
	out := B0
	for _, b := range bits {
		switch b {
		case B1:
			return B1
		case BX:
			out = BX
		}
	}
	return out
}

// Xor returns the ternary exclusive-or of bits.
func Xor(bits ...Bit) Bit {
	out := B0
	for _, b := range bits {
		if b == BX {
			return BX
		}
		if b == B1 {
			out = Not(out)
		}
	}
	return out
}

// Mux returns the ternary multiplexer value: a when sel=0, b when sel=1.
// When sel is X the result is known only if a and b agree.
func Mux(sel, a, b Bit) Bit {
	switch sel {
	case B0:
		return a
	case B1:
		return b
	}
	if a == b && a.Known() {
		return a
	}
	return BX
}

// Equal reports whether a and b are compatible under the ternary order,
// i.e. equal, or at least one of them is X.
func Compatible(a, b Bit) bool { return a == b || a == BX || b == BX }

// Meet returns the most specific value consistent with both a and b, and
// whether such a value exists (false on a 0/1 conflict).
func Meet(a, b Bit) (Bit, bool) {
	switch {
	case a == b:
		return a, true
	case a == BX:
		return b, true
	case b == BX:
		return a, true
	}
	return BX, false
}
