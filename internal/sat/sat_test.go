package sat

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New(1)
	s.AddClause(L(0, false))
	if !s.Solve() {
		t.Fatal("x0 unsat?")
	}
	if !s.Value(0) {
		t.Error("model wrong")
	}
	s.AddClause(L(0, true))
	if s.Solve() {
		t.Fatal("x0 & !x0 sat?")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New(1)
	s.AddClause()
	if s.Solve() {
		t.Fatal("empty clause sat?")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New(1)
	s.AddClause(L(0, false), L(0, true))
	if !s.Solve() {
		t.Fatal("tautology made instance unsat")
	}
}

func TestUnitChain(t *testing.T) {
	// x0 ; !x0|x1 ; !x1|x2 — forces all true.
	s := New(3)
	s.AddClause(L(0, false))
	s.AddClause(L(0, true), L(1, false))
	s.AddClause(L(1, true), L(2, false))
	if !s.Solve() {
		t.Fatal("unsat?")
	}
	for v := 0; v < 3; v++ {
		if !s.Value(v) {
			t.Errorf("x%d = false, want true", v)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New(2)
	s.AddClause(L(0, false), L(1, false)) // x0 | x1
	if !s.Solve(L(0, true)) {             // assume !x0
		t.Fatal("unsat under assumption !x0")
	}
	if !s.Value(1) {
		t.Error("x1 must be true when x0 assumed false")
	}
	s.AddClause(L(1, true)) // !x1
	if s.Solve(L(0, true)) {
		t.Fatal("sat under contradictory assumptions")
	}
}

func TestPigeonhole3x2(t *testing.T) {
	// 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h. Unsat.
	s := New(6)
	for p := 0; p < 3; p++ {
		s.AddClause(L(p*2, false), L(p*2+1, false))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				s.AddClause(L(p1*2+h, true), L(p2*2+h, true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole 3/2 sat?")
	}
}

// Random 3-SAT cross-checked against brute force.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 300; iter++ {
		nv := 3 + rng.Intn(8)
		nc := 2 + rng.Intn(4*nv)
		clauses := make([][]Lit, nc)
		s := New(nv)
		for i := range clauses {
			n := 1 + rng.Intn(3)
			cl := make([]Lit, n)
			for j := range cl {
				cl[j] = L(rng.Intn(nv), rng.Intn(2) == 0)
			}
			clauses[i] = cl
			s.AddClause(cl...)
		}
		got := s.Solve()

		want := false
		for m := 0; m < 1<<nv && !want; m++ {
			all := true
			for _, cl := range clauses {
				cSat := false
				for _, l := range cl {
					if (m>>l.Var()&1 == 1) != l.Neg() {
						cSat = true
						break
					}
				}
				if !cSat {
					all = false
					break
				}
			}
			want = all
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v", iter, got, want)
		}
		if got {
			// Model must satisfy every clause.
			for ci, cl := range clauses {
				ok := false
				for _, l := range cl {
					if s.Value(l.Var()) != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model falsifies clause %d", iter, ci)
				}
			}
		}
	}
}

func TestLiftMaximizesDontCares(t *testing.T) {
	// (x0 | x1 | x2): one literal suffices; the others lift.
	s := New(3)
	s.AddClause(L(0, false), L(1, false), L(2, false))
	if !s.Solve() {
		t.Fatal("unsat?")
	}
	model := s.Lift(nil)
	if len(model) != 1 {
		t.Errorf("lifted model = %v, want exactly one assignment", model)
	}
	// And the remaining assignment satisfies the clause.
	ok := false
	for v, val := range model {
		_ = v
		if val {
			ok = true
		}
	}
	if !ok {
		t.Errorf("lifted model %v does not satisfy the clause", model)
	}
}

func TestLiftKeepsProtectedVars(t *testing.T) {
	s := New(2)
	s.AddClause(L(0, false), L(1, false))
	if !s.Solve() {
		t.Fatal("unsat?")
	}
	model := s.Lift(map[int]bool{0: true, 1: true})
	if len(model) != 2 {
		t.Errorf("protected vars lifted: %v", model)
	}
}

// Lift must always return a model that satisfies all clauses under every
// completion of the lifted (unassigned) variables.
func TestLiftSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 100; iter++ {
		nv := 3 + rng.Intn(5)
		s := New(nv)
		var clauses [][]Lit
		for i := 0; i < 2+rng.Intn(8); i++ {
			n := 1 + rng.Intn(3)
			cl := make([]Lit, n)
			for j := range cl {
				cl[j] = L(rng.Intn(nv), rng.Intn(2) == 0)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		if !s.Solve() {
			continue
		}
		model := s.Lift(nil)
		// Check all completions.
		var free []int
		for v := 0; v < nv; v++ {
			if _, ok := model[v]; !ok {
				free = append(free, v)
			}
		}
		for m := 0; m < 1<<len(free); m++ {
			full := make(map[int]bool, nv)
			for k, v := range model {
				full[k] = v
			}
			for j, v := range free {
				full[v] = m>>j&1 == 1
			}
			for ci, cl := range clauses {
				ok := false
				for _, l := range cl {
					if full[l.Var()] != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: lifted model %v + completion %b falsifies clause %d",
						iter, model, m, ci)
				}
			}
		}
	}
}
