// Package sat implements a CNF satisfiability solver: conflict-driven
// clause learning (CDCL) with two-literal watching, first-UIP conflict
// analysis, backjumping, activity-based decisions and restarts (cdcl.go).
//
// It serves two customers: the SAT backend for reset-state justification
// (the paper uses BDDs; SAT is what a modern implementation would reach
// for) and the bounded equivalence checker in internal/bmc, whose
// unsatisfiable miters are what demand clause learning. The solver also
// supports the greedy don't-care lifting justification wants: after a model
// is found, Lift withdraws assignments that no clause needs, maximizing
// unassigned variables.
package sat

import "fmt"

// Lit is a literal: variable index v encoded as 2v (positive) or 2v+1
// (negated).
type Lit int32

// L builds a literal from a variable and sign.
func L(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("¬x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// value of a variable.
type value int8

const (
	unassigned value = iota
	vTrue
	vFalse
)

// Solver holds a CNF instance.
type Solver struct {
	nvars   int
	clauses [][]Lit
	watch   [][]int32 // literal -> clause indices watching it
	assign  []value
	trail   []Lit
	// trailLim marks decision levels in the trail.
	trailLim []int
	empty    bool // an empty clause was added: trivially unsat

	// MaxConflicts caps the total number of conflicts a single Solve may
	// analyze across restarts; 0 means unlimited. When the budget runs out,
	// SolveCtx returns sat=false with an error wrapping
	// rterr.ErrBudgetExceeded, which callers must distinguish from UNSAT.
	MaxConflicts int
}

// New returns a solver over nvars variables. Literals referencing higher
// variables grow the solver automatically.
func New(nvars int) *Solver {
	return &Solver{
		nvars:  nvars,
		watch:  make([][]int32, 2*nvars),
		assign: make([]value, nvars),
	}
}

// ensure grows the solver to cover variable v.
func (s *Solver) ensure(v int) {
	if v < s.nvars {
		return
	}
	s.nvars = v + 1
	for len(s.assign) < s.nvars {
		s.assign = append(s.assign, unassigned)
	}
	for len(s.watch) < 2*s.nvars {
		s.watch = append(s.watch, nil)
	}
}

// AddClause adds a disjunction of literals. An empty clause makes the
// instance unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) {
	// Dedup and tautology check.
	seen := make(map[Lit]bool, len(lits))
	out := lits[:0]
	for _, l := range lits {
		s.ensure(l.Var())
		if seen[l.Not()] {
			return // tautology
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		s.empty = true
		return
	}
	idx := int32(len(s.clauses))
	s.clauses = append(s.clauses, append([]Lit(nil), out...))
	s.watch[out[0]] = append(s.watch[out[0]], idx)
	if len(out) > 1 {
		s.watch[out[1]] = append(s.watch[out[1]], idx)
	}
}

func (s *Solver) litValue(l Lit) value {
	v := s.assign[l.Var()]
	if v == unassigned {
		return unassigned
	}
	if (v == vTrue) != l.Neg() {
		return vTrue
	}
	return vFalse
}

// enqueue assigns l true; returns false on conflict.
func (s *Solver) enqueue(l Lit) bool {
	switch s.litValue(l) {
	case vTrue:
		return true
	case vFalse:
		return false
	}
	if l.Neg() {
		s.assign[l.Var()] = vFalse
	} else {
		s.assign[l.Var()] = vTrue
	}
	s.trail = append(s.trail, l)
	return true
}

// Value returns the model value of variable v after a successful Solve.
func (s *Solver) Value(v int) bool { return s.assign[v] == vTrue }

// Lift greedily withdraws variable assignments that no clause needs,
// returning the set of variables that must stay assigned and their values.
// A variable can be lifted when every clause still contains a literal that
// is definitely true without it. Variables in keep are never lifted.
func (s *Solver) Lift(keep map[int]bool) map[int]bool {
	model := make(map[int]bool, s.nvars)
	for v := 0; v < s.nvars; v++ {
		if s.assign[v] != unassigned {
			model[v] = s.assign[v] == vTrue
		}
	}
	for v := 0; v < s.nvars; v++ {
		if keep[v] {
			continue
		}
		if _, ok := model[v]; !ok {
			continue
		}
		saved := model[v]
		delete(model, v)
		if !s.modelSatisfies(model) {
			model[v] = saved
		}
	}
	return model
}

// modelSatisfies checks that every clause has a literal made true by the
// partial model.
func (s *Solver) modelSatisfies(model map[int]bool) bool {
	for _, cl := range s.clauses {
		sat := false
		for _, l := range cl {
			if val, ok := model[l.Var()]; ok && val != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}
