package sat

import (
	"context"
	"fmt"

	"mcretiming/internal/rterr"
)

// Conflict-driven clause learning: the search core of Solve. The solver
// keeps an implication graph (a reason clause per assigned variable),
// analyzes each conflict to the first unique implication point, learns the
// resulting clause, backjumps, and restarts on a doubling conflict budget.
// Decisions pick the unassigned variable with the highest bumped activity
// (VSIDS without the heap — instances here are small).

const (
	noReason int32 = -1
	varDecay       = 0.95
)

type searchState struct {
	level    []int32   // decision level per variable
	reason   []int32   // implying clause per variable, noReason for decisions
	activity []float64 // VSIDS-ish scores
	varInc   float64
	seen     []bool // scratch for analyze
}

func (s *Solver) initSearch() *searchState {
	return &searchState{
		level:    make([]int32, s.nvars),
		reason:   make([]int32, s.nvars),
		activity: make([]float64, s.nvars),
		varInc:   1,
		seen:     make([]bool, s.nvars),
	}
}

// Solve decides satisfiability with CDCL. On SAT the model is readable via
// Value. Assumptions are enqueued at decision level 0, so a conflict with
// them is final UNSAT.
func (s *Solver) Solve(assumptions ...Lit) bool {
	ok, _ := s.SolveCtx(context.Background(), assumptions...)
	return ok
}

// SolveCtx is Solve with cooperative cancellation: ctx is polled at every
// decision and conflict, and its (non-nil) error is returned with sat=false.
// Callers must distinguish cancellation from UNSAT via the error.
func (s *Solver) SolveCtx(ctx context.Context, assumptions ...Lit) (bool, error) {
	if s.empty {
		return false, nil
	}
	for i := range s.assign {
		s.assign[i] = unassigned
	}
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	st := s.initSearch()

	enq := func(l Lit, reason int32) bool {
		switch s.litValue(l) {
		case vTrue:
			return true
		case vFalse:
			return false
		}
		s.enqueue(l)
		v := l.Var()
		st.level[v] = int32(len(s.trailLim))
		st.reason[v] = reason
		return true
	}

	for ci, cl := range s.clauses {
		if len(cl) == 1 {
			if !enq(cl[0], int32(ci)) {
				return false, nil
			}
		}
	}
	for _, a := range assumptions {
		if !enq(a, noReason) {
			return false, nil
		}
	}
	qhead := 0
	if conflict := s.propagateCDCL(&qhead, st); conflict >= 0 {
		return false, nil
	}

	conflictBudget := 128
	conflicts := 0
	totalConflicts := 0
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		// Decision.
		pick := -1
		best := -1.0
		for v := 0; v < s.nvars; v++ {
			if s.assign[v] == unassigned && st.activity[v] > best {
				best = st.activity[v]
				pick = v
			}
		}
		if pick == -1 {
			return true, nil
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		enq(L(pick, true), noReason) // negative polarity first: cheap for miters

		for {
			conflict := s.propagateCDCL(&qhead, st)
			if conflict < 0 {
				break
			}
			if err := ctx.Err(); err != nil {
				return false, err
			}
			conflicts++
			totalConflicts++
			if s.MaxConflicts > 0 && totalConflicts >= s.MaxConflicts {
				return false, fmt.Errorf("sat: conflict budget %d exhausted: %w", s.MaxConflicts, rterr.ErrBudgetExceeded)
			}
			if len(s.trailLim) == 0 {
				return false, nil
			}
			learnt, backLevel := s.analyze(conflict, st)
			s.backtrackTo(backLevel, st, &qhead)
			ci := s.learnClause(learnt)
			if !enq(learnt[0], ci) {
				return false, nil
			}
			st.varInc /= varDecay
			if st.varInc > 1e100 {
				for v := range st.activity {
					st.activity[v] *= 1e-100
				}
				st.varInc *= 1e-100
			}
			if conflicts >= conflictBudget {
				// Restart: keep learnt clauses, drop the trail.
				conflicts = 0
				conflictBudget += conflictBudget / 2
				s.backtrackTo(0, st, &qhead)
				break
			}
		}
	}
}

// propagateCDCL is unit propagation returning the index of a conflicting
// clause, or -1.
func (s *Solver) propagateCDCL(qhead *int, st *searchState) int32 {
	for *qhead < len(s.trail) {
		l := s.trail[*qhead]
		*qhead++
		falsified := l.Not()
		ws := s.watch[falsified]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			ci := ws[wi]
			cl := s.clauses[ci]
			if len(cl) == 1 {
				kept = append(kept, ci)
				kept = append(kept, ws[wi+1:]...)
				s.watch[falsified] = kept
				return ci
			}
			if cl[0] == falsified {
				cl[0], cl[1] = cl[1], cl[0]
			}
			if s.litValue(cl[0]) == vTrue {
				kept = append(kept, ci)
				continue
			}
			moved := false
			for k := 2; k < len(cl); k++ {
				if s.litValue(cl[k]) != vFalse {
					cl[1], cl[k] = cl[k], cl[1]
					s.watch[cl[1]] = append(s.watch[cl[1]], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, ci)
			if s.litValue(cl[0]) == vFalse {
				kept = append(kept, ws[wi+1:]...)
				s.watch[falsified] = kept
				return ci
			}
			// Unit: imply cl[0].
			s.enqueue(cl[0])
			v := cl[0].Var()
			st.level[v] = int32(len(s.trailLim))
			st.reason[v] = ci
		}
		s.watch[falsified] = kept
	}
	return -1
}

// analyze derives the first-UIP clause from a conflict and the level to
// backjump to. learnt[0] is the asserting literal.
func (s *Solver) analyze(conflict int32, st *searchState) ([]Lit, int) {
	curLevel := int32(len(s.trailLim))
	learnt := []Lit{0} // slot 0 for the asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p Lit
	haveP := false
	cl := s.clauses[conflict]
	for {
		for _, q := range cl {
			if haveP && q == p {
				continue
			}
			v := q.Var()
			if st.seen[v] || st.level[v] == 0 {
				continue
			}
			st.seen[v] = true
			st.activity[v] += st.varInc
			if st.level[v] == curLevel {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !st.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		haveP = true
		st.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		cl = s.clauses[st.reason[p.Var()]]
		idx--
	}
	learnt[0] = p.Not()
	// Clear seen flags and find the backjump level.
	back := 0
	for _, q := range learnt[1:] {
		st.seen[q.Var()] = false
		if int(st.level[q.Var()]) > back {
			back = int(st.level[q.Var()])
		}
	}
	return learnt, back
}

// backtrackTo unwinds the trail to the given decision level.
func (s *Solver) backtrackTo(level int, st *searchState, qhead *int) {
	if len(s.trailLim) <= level {
		return
	}
	bound := s.trailLim[level]
	for len(s.trail) > bound {
		l := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[l.Var()] = unassigned
	}
	s.trailLim = s.trailLim[:level]
	if *qhead > len(s.trail) {
		*qhead = len(s.trail)
	}
}

// learnClause installs a learnt clause with proper watches: learnt[0] is the
// asserting literal and learnt[1] (when present) a highest-level literal.
func (s *Solver) learnClause(learnt []Lit) int32 {
	if len(learnt) > 1 {
		// Move a literal of the backjump level into the second watch slot.
		best := 1
		for i := 2; i < len(learnt); i++ {
			if s.litValue(learnt[i]) != vFalse {
				best = i
				break
			}
		}
		learnt[1], learnt[best] = learnt[best], learnt[1]
	}
	ci := int32(len(s.clauses))
	s.clauses = append(s.clauses, append([]Lit(nil), learnt...))
	s.watch[learnt[0]] = append(s.watch[learnt[0]], ci)
	if len(learnt) > 1 {
		s.watch[learnt[1]] = append(s.watch[learnt[1]], ci)
	}
	return ci
}
