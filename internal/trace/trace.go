// Package trace is the structured observability layer of the retiming flow:
// hierarchical spans with per-span wall time and named counters, fed through
// the Sink interface by the pass pipeline (internal/pass) and by the solver
// inner loops (lazy period cuts, min-cost-flow augmentations, justification).
//
// The default sink is a no-op, so uninstrumented runs pay nothing beyond an
// interface call per event. NewRecorder collects the span tree in memory and
// renders it as an indented text report (WriteText) or as Chrome trace-event
// JSON (WriteChromeTrace; load it in chrome://tracing or ui.perfetto.dev).
//
// Deep solver loops receive the sink through a context.Context (With/From),
// so their signatures carry only the ctx they already need for cancellation.
package trace

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Sink receives the structured events of an instrumented run.
//
// BeginSpan/EndSpan bracket hierarchical timed regions; Add accumulates a
// delta into a named counter of the innermost open span (or into the run's
// root counters when no span is open). Implementations must tolerate Add
// calls from the goroutine driving the spans at any point.
type Sink interface {
	BeginSpan(name string)
	EndSpan()
	Add(counter string, delta int64)
}

type nopSink struct{}

func (nopSink) BeginSpan(string)  {}
func (nopSink) EndSpan()          {}
func (nopSink) Add(string, int64) {}

// Nop returns the do-nothing Sink.
func Nop() Sink { return nopSink{} }

type ctxKey struct{}

// With returns a context carrying sink, for retrieval with From inside
// solver loops. A nil sink stores the no-op sink.
func With(ctx context.Context, sink Sink) context.Context {
	if sink == nil {
		sink = Nop()
	}
	return context.WithValue(ctx, ctxKey{}, sink)
}

// From returns the Sink carried by ctx, or the no-op sink.
func From(ctx context.Context) Sink {
	if s, ok := ctx.Value(ctxKey{}).(Sink); ok {
		return s
	}
	return Nop()
}

// Span is one recorded region of a run.
type Span struct {
	Name     string
	Start    time.Duration // offset from the recorder's creation
	Duration time.Duration
	Parent   int // index of the parent span in Spans(), -1 for roots
	Depth    int
	Counters map[string]int64 // nil when the span recorded no counters
}

// Recorder is a Sink that records the span tree in memory.
type Recorder struct {
	mu    sync.Mutex
	epoch time.Time
	spans []span
	open  []int // stack of open span indices
	root  map[string]int64
}

type span struct {
	name     string
	start    time.Duration
	duration time.Duration
	parent   int
	depth    int
	closed   bool
	counters map[string]int64
}

// NewRecorder returns an empty recording sink; its epoch (span offsets'
// zero) is the moment of the call.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now(), root: make(map[string]int64)}
}

func (r *Recorder) now() time.Duration { return time.Since(r.epoch) }

// BeginSpan implements Sink.
func (r *Recorder) BeginSpan(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	parent, depth := -1, 0
	if len(r.open) > 0 {
		parent = r.open[len(r.open)-1]
		depth = r.spans[parent].depth + 1
	}
	r.spans = append(r.spans, span{name: name, start: r.now(), parent: parent, depth: depth})
	r.open = append(r.open, len(r.spans)-1)
}

// EndSpan implements Sink. Unbalanced calls are ignored.
func (r *Recorder) EndSpan() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.open) == 0 {
		return
	}
	i := r.open[len(r.open)-1]
	r.open = r.open[:len(r.open)-1]
	r.spans[i].duration = r.now() - r.spans[i].start
	r.spans[i].closed = true
}

// Add implements Sink.
func (r *Recorder) Add(counter string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.open) > 0 {
		sp := &r.spans[r.open[len(r.open)-1]]
		if sp.counters == nil {
			sp.counters = make(map[string]int64)
		}
		sp.counters[counter] += delta
		return
	}
	r.root[counter] += delta
}

// Spans returns a snapshot of the recorded spans in begin order. Spans still
// open are reported with their duration up to now.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]Span, len(r.spans))
	for i, sp := range r.spans {
		d := sp.duration
		if !sp.closed {
			d = now - sp.start
		}
		var counters map[string]int64
		if len(sp.counters) > 0 {
			counters = make(map[string]int64, len(sp.counters))
			for k, v := range sp.counters {
				counters[k] = v
			}
		}
		out[i] = Span{Name: sp.name, Start: sp.start, Duration: d,
			Parent: sp.parent, Depth: sp.depth, Counters: counters}
	}
	return out
}

// Total returns the summed duration of every recorded span named name
// (retried passes appear once per attempt and sum here).
func (r *Recorder) Total(name string) time.Duration {
	var total time.Duration
	for _, sp := range r.Spans() {
		if sp.Name == name {
			total += sp.Duration
		}
	}
	return total
}

// Counter returns the summed value of the named counter over the root and
// every span.
func (r *Recorder) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.root[name]
	for i := range r.spans {
		total += r.spans[i].counters[name]
	}
	return total
}

// RootCounters returns a copy of the counters recorded outside any span.
func (r *Recorder) RootCounters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.root))
	for k, v := range r.root {
		out[k] = v
	}
	return out
}

// AllCounters returns every counter of the recorder — root plus all spans —
// summed by name. Span identity is lost; this is the projection a parent
// run folds into its own sink when it ran children on private recorders.
func (r *Recorder) AllCounters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.root))
	for k, v := range r.root {
		out[k] = v
	}
	for i := range r.spans {
		for k, v := range r.spans[i].counters {
			out[k] += v
		}
	}
	return out
}

// MergeCounters folds every counter of rec into dst in sorted-name order, so
// a deterministic sink sees a deterministic sequence regardless of how the
// recorder was populated. Parallel stages record into private Recorders and
// merge here instead of sharing one sink concurrently.
func MergeCounters(dst Sink, rec *Recorder) {
	if dst == nil || rec == nil {
		return
	}
	all := rec.AllCounters()
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dst.Add(name, all[name])
	}
}
