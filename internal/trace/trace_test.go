package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRecorderSpanTree(t *testing.T) {
	r := NewRecorder()
	r.BeginSpan("outer")
	r.Add("widgets", 2)
	r.BeginSpan("inner")
	r.Add("widgets", 3)
	r.EndSpan()
	r.EndSpan()
	r.BeginSpan("second")
	r.EndSpan()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	outer, inner, second := spans[0], spans[1], spans[2]
	if outer.Name != "outer" || outer.Parent != -1 || outer.Depth != 0 {
		t.Errorf("outer = %+v", outer)
	}
	if inner.Name != "inner" || inner.Parent != 0 || inner.Depth != 1 {
		t.Errorf("inner = %+v", inner)
	}
	if second.Name != "second" || second.Parent != -1 || second.Depth != 0 {
		t.Errorf("second = %+v", second)
	}
	if outer.Counters["widgets"] != 2 || inner.Counters["widgets"] != 3 {
		t.Errorf("counters: outer=%v inner=%v", outer.Counters, inner.Counters)
	}
	if r.Counter("widgets") != 5 {
		t.Errorf("Counter(widgets) = %d, want 5", r.Counter("widgets"))
	}
	if outer.Duration < inner.Duration {
		t.Errorf("outer (%v) shorter than nested inner (%v)", outer.Duration, inner.Duration)
	}
}

func TestRecorderRootCountersAndUnbalancedEnd(t *testing.T) {
	r := NewRecorder()
	r.EndSpan() // unbalanced: must be ignored
	r.Add("loose", 7)
	if got := r.RootCounters()["loose"]; got != 7 {
		t.Errorf("root counter = %d, want 7", got)
	}
	if got := r.Counter("loose"); got != 7 {
		t.Errorf("Counter = %d, want 7", got)
	}
}

func TestRecorderTotalSumsRepeats(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 3; i++ {
		r.BeginSpan("pass")
		time.Sleep(time.Millisecond)
		r.EndSpan()
	}
	var sum time.Duration
	for _, sp := range r.Spans() {
		sum += sp.Duration
	}
	if got := r.Total("pass"); got != sum {
		t.Errorf("Total = %v, want %v", got, sum)
	}
	if got := r.Total("absent"); got != 0 {
		t.Errorf("Total(absent) = %v, want 0", got)
	}
}

func TestOpenSpanReportedWithRunningDuration(t *testing.T) {
	r := NewRecorder()
	r.BeginSpan("open")
	time.Sleep(time.Millisecond)
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Duration <= 0 {
		t.Fatalf("open span not reported with running duration: %+v", spans)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	r := NewRecorder()
	r.Add("root-counter", 4)
	r.BeginSpan("a")
	r.BeginSpan("b")
	r.Add("cuts", 9)
	r.EndSpan()
	r.EndSpan()

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var xEvents, cEvents int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			xEvents++
			if _, ok := ev["ts"].(float64); !ok {
				t.Errorf("X event without numeric ts: %v", ev)
			}
		case "C":
			cEvents++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if xEvents != 2 || cEvents != 1 {
		t.Errorf("got %d X + %d C events, want 2 + 1", xEvents, cEvents)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRecorder()
	r.BeginSpan("outer")
	r.Add("n", 1)
	r.BeginSpan("inner")
	r.EndSpan()
	r.EndSpan()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"outer", "inner", "n=1", "2 spans"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestContextCarry(t *testing.T) {
	if From(context.Background()) != Nop() {
		t.Error("From on a bare context is not the no-op sink")
	}
	r := NewRecorder()
	ctx := With(context.Background(), r)
	if From(ctx) != Sink(r) {
		t.Error("From did not return the stored sink")
	}
	if From(With(context.Background(), nil)) != Nop() {
		t.Error("With(nil) did not store the no-op sink")
	}
	// The no-op sink accepts events without effect.
	s := Nop()
	s.BeginSpan("x")
	s.Add("c", 1)
	s.EndSpan()
}
