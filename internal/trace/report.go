package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteText renders the span tree as an indented human-readable report with
// per-span wall times and counters.
func (r *Recorder) WriteText(w io.Writer) error {
	spans := r.Spans()
	var total time.Duration
	for _, sp := range spans {
		if sp.Parent == -1 {
			total += sp.Duration
		}
	}
	if _, err := fmt.Fprintf(w, "trace: %d spans, %v total\n", len(spans), total.Round(time.Microsecond)); err != nil {
		return err
	}
	for _, sp := range spans {
		if _, err := fmt.Fprintf(w, "%*s%-24s %10v%s\n", 2+2*sp.Depth, "",
			sp.Name, sp.Duration.Round(time.Microsecond), formatCounters(sp.Counters)); err != nil {
			return err
		}
	}
	if root := r.RootCounters(); len(root) > 0 {
		if _, err := fmt.Fprintf(w, "  counters:%s\n", formatCounters(root)); err != nil {
			return err
		}
	}
	return nil
}

func formatCounters(c map[string]int64) string {
	if len(c) == 0 {
		return ""
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("  %s=%d", k, c[k])
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON array format.
// Complete events ("ph":"X") carry ts/dur in microseconds; counter events
// ("ph":"C") carry instantaneous values in args.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the recorded spans as a Chrome trace-event JSON
// array (the format chrome://tracing and ui.perfetto.dev load): one complete
// event per span, its counters attached as args, plus one counter event per
// root counter.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	events := make([]chromeEvent, 0, len(spans)+1)
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start) / float64(time.Microsecond),
			Dur:  float64(sp.Duration) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
		}
		if len(sp.Counters) > 0 {
			ev.Args = make(map[string]any, len(sp.Counters))
			for k, v := range sp.Counters {
				ev.Args[k] = v
			}
		}
		events = append(events, ev)
	}
	for name, v := range r.RootCounters() {
		events = append(events, chromeEvent{
			Name: name, Ph: "C", Ts: 0, Pid: 1, Tid: 1,
			Args: map[string]any{"value": v},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
