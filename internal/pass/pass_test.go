package pass

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcretiming/internal/trace"
)

type state struct{ log []string }

func step(name string, err error) Pass[state] {
	return Pass[state]{Name: name, Run: func(c *Context[state]) error {
		c.State.log = append(c.State.log, name)
		return err
	}}
}

func TestPipelineRunsInOrder(t *testing.T) {
	c := NewContext(nil, nil, &state{})
	p := Pipeline[state]{step("a", nil), step("b", nil), step("c", nil)}
	if err := p.Run(c); err != nil {
		t.Fatal(err)
	}
	if got := c.State.log; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("order = %v", got)
	}
}

func TestPipelineStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	c := NewContext(nil, nil, &state{})
	p := Pipeline[state]{step("a", nil), step("b", boom), step("c", nil)}
	if err := p.Run(c); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := c.State.log; len(got) != 2 {
		t.Errorf("ran %v, want a b only", got)
	}
}

func TestPipelineEmitsSpansAndObserve(t *testing.T) {
	rec := trace.NewRecorder()
	c := NewContext(context.Background(), rec, &state{})
	var names []string
	c.Observe = func(name string, _ time.Duration) { names = append(names, name) }
	p := Pipeline[state]{step("a", nil), step("b", nil)}
	if err := p.Run(c); err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Errorf("spans = %+v", spans)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("observed = %v", names)
	}
}

func TestPipelineHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewContext(ctx, nil, &state{})
	ran := 0
	p := Pipeline[state]{
		{Name: "a", Run: func(*Context[state]) error { ran++; cancel(); return nil }},
		{Name: "b", Run: func(*Context[state]) error { ran++; return nil }},
	}
	err := p.Run(c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Errorf("ran %d passes after cancellation, want 1", ran)
	}
}

func TestRetrySucceedsAfterRecovery(t *testing.T) {
	boom := errors.New("conflict")
	attempts := 0
	body := Pipeline[state]{{Name: "solve", Run: func(*Context[state]) error {
		attempts++
		if attempts < 3 {
			return boom
		}
		return nil
	}}}
	recoveries := 0
	p := Retry("retry", 8, body, func(*Context[state], error) bool { recoveries++; return true })
	c := NewContext(nil, nil, &state{})
	if err := (Pipeline[state]{p}).Run(c); err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || recoveries != 2 {
		t.Errorf("attempts=%d recoveries=%d, want 3 and 2", attempts, recoveries)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	boom := errors.New("conflict")
	attempts := 0
	body := Pipeline[state]{{Name: "solve", Run: func(*Context[state]) error { attempts++; return boom }}}
	p := Retry("retry", 2, body, func(*Context[state], error) bool { return true })
	c := NewContext(nil, nil, &state{})
	if err := (Pipeline[state]{p}).Run(c); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if attempts != 3 { // initial try + 2 retries
		t.Errorf("attempts = %d, want 3", attempts)
	}
}

func TestRetryStopsWhenRecoverDeclines(t *testing.T) {
	boom := errors.New("conflict")
	attempts := 0
	body := Pipeline[state]{{Name: "solve", Run: func(*Context[state]) error { attempts++; return boom }}}
	p := Retry("retry", 8, body, func(*Context[state], error) bool { return false })
	c := NewContext(nil, nil, &state{})
	if err := (Pipeline[state]{p}).Run(c); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1", attempts)
	}
}

func TestRetryNeverRetriesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	body := Pipeline[state]{{Name: "solve", Run: func(c *Context[state]) error {
		attempts++
		cancel()
		return c.Err()
	}}}
	p := Retry("retry", 8, body, func(*Context[state], error) bool { return true })
	c := NewContext(ctx, nil, &state{})
	if err := (Pipeline[state]{p}).Run(c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after cancel)", attempts)
	}
}
