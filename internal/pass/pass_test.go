package pass

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcretiming/internal/rterr"
	"mcretiming/internal/trace"
)

type state struct{ log []string }

func step(name string, err error) Pass[state] {
	return Pass[state]{Name: name, Run: func(c *Context[state]) error {
		c.State.log = append(c.State.log, name)
		return err
	}}
}

func TestPipelineRunsInOrder(t *testing.T) {
	c := NewContext(nil, nil, &state{})
	p := Pipeline[state]{step("a", nil), step("b", nil), step("c", nil)}
	if err := p.Run(c); err != nil {
		t.Fatal(err)
	}
	if got := c.State.log; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("order = %v", got)
	}
}

func TestPipelineStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	c := NewContext(nil, nil, &state{})
	p := Pipeline[state]{step("a", nil), step("b", boom), step("c", nil)}
	if err := p.Run(c); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := c.State.log; len(got) != 2 {
		t.Errorf("ran %v, want a b only", got)
	}
}

func TestPipelineEmitsSpansAndObserve(t *testing.T) {
	rec := trace.NewRecorder()
	c := NewContext(context.Background(), rec, &state{})
	var names []string
	c.Observe = func(name string, _ time.Duration) { names = append(names, name) }
	p := Pipeline[state]{step("a", nil), step("b", nil)}
	if err := p.Run(c); err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "b" {
		t.Errorf("spans = %+v", spans)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("observed = %v", names)
	}
}

func TestPipelineHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := NewContext(ctx, nil, &state{})
	ran := 0
	p := Pipeline[state]{
		{Name: "a", Run: func(*Context[state]) error { ran++; cancel(); return nil }},
		{Name: "b", Run: func(*Context[state]) error { ran++; return nil }},
	}
	err := p.Run(c)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 1 {
		t.Errorf("ran %d passes after cancellation, want 1", ran)
	}
}

func TestRetrySucceedsAfterRecovery(t *testing.T) {
	boom := errors.New("conflict")
	attempts := 0
	body := Pipeline[state]{{Name: "solve", Run: func(*Context[state]) error {
		attempts++
		if attempts < 3 {
			return boom
		}
		return nil
	}}}
	recoveries := 0
	p := Retry("retry", 8, body, func(*Context[state], error) bool { recoveries++; return true })
	c := NewContext(nil, nil, &state{})
	if err := (Pipeline[state]{p}).Run(c); err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || recoveries != 2 {
		t.Errorf("attempts=%d recoveries=%d, want 3 and 2", attempts, recoveries)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	boom := errors.New("conflict")
	attempts := 0
	body := Pipeline[state]{{Name: "solve", Run: func(*Context[state]) error { attempts++; return boom }}}
	p := Retry("retry", 2, body, func(*Context[state], error) bool { return true })
	c := NewContext(nil, nil, &state{})
	if err := (Pipeline[state]{p}).Run(c); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if attempts != 3 { // initial try + 2 retries
		t.Errorf("attempts = %d, want 3", attempts)
	}
}

func TestRetryStopsWhenRecoverDeclines(t *testing.T) {
	boom := errors.New("conflict")
	attempts := 0
	body := Pipeline[state]{{Name: "solve", Run: func(*Context[state]) error { attempts++; return boom }}}
	p := Retry("retry", 8, body, func(*Context[state], error) bool { return false })
	c := NewContext(nil, nil, &state{})
	if err := (Pipeline[state]{p}).Run(c); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1", attempts)
	}
}

func TestCrashingPassBecomesPanicError(t *testing.T) {
	c := NewContext(nil, nil, &state{})
	p := Pipeline[state]{
		step("a", nil),
		{Name: "boom", Run: func(*Context[state]) error {
			var zero []int
			_ = zero[3] // out-of-range: crashes the pass
			return nil
		}},
		step("c", nil),
	}
	err := p.Run(c)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Pass != "boom" {
		t.Errorf("Pass = %q, want boom", pe.Pass)
	}
	if len(pe.Trail) != 1 || pe.Trail[0] != "boom" {
		t.Errorf("Trail = %v, want [boom]", pe.Trail)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !errors.Is(err, rterr.ErrInternal) {
		t.Error("PanicError does not wrap rterr.ErrInternal")
	}
	if got := c.State.log; len(got) != 1 || got[0] != "a" {
		t.Errorf("ran %v, want a only", got)
	}
	if len(c.Trail()) != 0 {
		t.Errorf("trail not unwound: %v", c.Trail())
	}
}

func TestCrashInsideRetryCarriesFullTrail(t *testing.T) {
	body := Pipeline[state]{{Name: "solve", Run: func(*Context[state]) error {
		var m map[string]int
		m["w"] = 1 // nil-map write: crashes the pass
		return nil
	}}}
	p := Retry("retry", 8, body, func(*Context[state], error) bool { return false })
	c := NewContext(nil, nil, &state{})
	err := (Pipeline[state]{p}).Run(c)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if len(pe.Trail) != 2 || pe.Trail[0] != "retry" || pe.Trail[1] != "solve" {
		t.Errorf("Trail = %v, want [retry solve]", pe.Trail)
	}
}

func TestRetryNeverRetriesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	body := Pipeline[state]{{Name: "solve", Run: func(c *Context[state]) error {
		attempts++
		cancel()
		return c.Err()
	}}}
	p := Retry("retry", 8, body, func(*Context[state], error) bool { return true })
	c := NewContext(ctx, nil, &state{})
	if err := (Pipeline[state]{p}).Run(c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry after cancel)", attempts)
	}
}
