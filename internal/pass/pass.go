// Package pass defines the pass-pipeline architecture the retiming flow is
// built on: a Pass is one named, individually timed step over a shared flow
// state; a Pipeline runs passes in order under a context.Context, emitting
// one trace span per pass; Retry is the combinator expressing the §5.2
// re-retiming loop (re-run a body pipeline while a recovery function can
// repair the error).
//
// The package is generic over the state type so it stays free of any
// dependency on the flow's concrete data structures; internal/core
// instantiates it with the mc-retiming flow state.
package pass

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"mcretiming/internal/failpoint"
	"mcretiming/internal/rterr"
	"mcretiming/internal/trace"
)

// Pass is one named step of a pipeline over state S.
type Pass[S any] struct {
	Name string
	Run  func(*Context[S]) error
}

// Context carries what every pass sees: the cancellation context, the event
// sink, and the shared flow state.
type Context[S any] struct {
	ctx   context.Context
	Sink  trace.Sink
	State *S
	// Observe, when set, is called after every pass with its name and wall
	// time — the hook aggregate reports are built from.
	Observe func(pass string, wall time.Duration)

	trail []string // names of the passes currently on the stack
}

// Trail returns the names of the passes currently executing, outermost
// first (combinator wrappers included). The returned slice is a copy.
func (c *Context[S]) Trail() []string {
	return append([]string(nil), c.trail...)
}

// NewContext returns a Context over state. A nil ctx means
// context.Background(); a nil sink means the no-op sink.
func NewContext[S any](ctx context.Context, sink trace.Sink, state *S) *Context[S] {
	if ctx == nil {
		ctx = context.Background()
	}
	if sink == nil {
		sink = trace.Nop()
	}
	return &Context[S]{ctx: ctx, Sink: sink, State: state}
}

// Ctx returns the cancellation context of the run.
func (c *Context[S]) Ctx() context.Context { return c.ctx }

// Err returns the context's error (non-nil once cancelled or past its
// deadline).
func (c *Context[S]) Err() error { return c.ctx.Err() }

// Pipeline is a sequence of passes run in order.
type Pipeline[S any] []Pass[S]

// Run executes the passes in order, wrapping each in a trace span, and stops
// at the first error. A cancelled context aborts before the next pass starts
// (passes themselves poll the context inside their long-running loops).
func (p Pipeline[S]) Run(c *Context[S]) error {
	for _, ps := range p {
		if err := c.Err(); err != nil {
			return err
		}
		if err := runOne(c, ps); err != nil {
			return err
		}
	}
	return nil
}

func runOne[S any](c *Context[S], ps Pass[S]) (err error) {
	c.Sink.BeginSpan(ps.Name)
	c.trail = append(c.trail, ps.Name)
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{
				Pass:  ps.Name,
				Trail: append([]string(nil), c.trail...),
				Value: r,
				Stack: debug.Stack(),
			}
		}
		c.trail = c.trail[:len(c.trail)-1]
		c.Sink.EndSpan()
		if c.Observe != nil {
			c.Observe(ps.Name, time.Since(start))
		}
	}()
	// Chaos hook: "pass.<name>" fires inside the span and inside the panic
	// recovery above, so an injected crash surfaces as the same PanicError a
	// real one would.
	if err := failpoint.Inject(c.ctx, "pass."+ps.Name); err != nil {
		return err
	}
	return ps.Run(c)
}

// PanicError is the error a crashing pass is converted into at the pipeline
// boundary: instead of taking the process down, the crash surfaces as a
// diagnosable error carrying the pass name, the span trail leading to it,
// the recovered value, and the goroutine stack at the crash site.
//
// It wraps rterr.ErrInternal, so errors.Is(err, rterr.ErrInternal) detects
// engine crashes without depending on this package.
type PanicError struct {
	Pass  string   // the pass that crashed
	Trail []string // pass names on the stack, outermost first
	Value any      // the recovered value
	Stack []byte   // debug.Stack() captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pass %q crashed (trail %v): %v", e.Pass, e.Trail, e.Value)
}

// Unwrap ties pass crashes into the error taxonomy.
func (e *PanicError) Unwrap() error { return rterr.ErrInternal }

// Retry wraps body as a single named pass implementing a bounded retry loop:
// when the body fails with an error for which recover returns true (after
// repairing the state, e.g. tightening a retiming bound), the body is re-run,
// up to max retries. Cancellation is never retried.
func Retry[S any](name string, max int, body Pipeline[S], recover func(*Context[S], error) bool) Pass[S] {
	return Pass[S]{Name: name, Run: func(c *Context[S]) error {
		for retries := 0; ; retries++ {
			err := body.Run(c)
			if err == nil {
				return nil
			}
			if c.Err() != nil || retries >= max || !recover(c, err) {
				return err
			}
		}
	}}
}
