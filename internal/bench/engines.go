package bench

import (
	"context"
	"fmt"
	"strings"

	"mcretiming/internal/core"
	"mcretiming/internal/gen"
	"mcretiming/internal/hdlio"
	"mcretiming/internal/netlist"
	"mcretiming/internal/retime"
)

// EnginePerf is the sparse-vs-dense solve-core measurement (mcbench
// -engines): the cold minperiod+minarea solve on the Table-2-scale random
// profile under both engines, and the ECO path (Prepared.Apply on a one-gate
// delay edit) against a cold Prepare on the same edited circuit.
type EnginePerf struct {
	// Vertices is the solver-graph size of the profile both engines solve.
	Vertices int `json:"vertices"`

	// Cold two-phase solve (minperiod + minarea), best of a few repetitions.
	DenseColdNS  int64 `json:"dense_cold_ns"`
	SparseColdNS int64 `json:"sparse_cold_ns"`
	// SparseSpeedup is dense wall / sparse wall: > 1 means the matrix-free
	// engine beats the W/D reference on a cold solve.
	SparseSpeedup float64 `json:"sparse_speedup"`
	// Identical: both engines found the same minimum period and the same
	// shared-register count.
	Identical bool `json:"identical"`

	// The ECO measurement: a cold core.Prepare on an edited circuit vs
	// Prepared.Apply absorbing the same edit incrementally.
	PrepareNS int64 `json:"prepare_ns"`
	ApplyNS   int64 `json:"apply_ns"`
	// EcoSpeedup is cold-prepare wall / apply wall.
	EcoSpeedup float64 `json:"eco_speedup"`
	// EcoIdentical: the ECO'd Prepared's anchor solve produced the same
	// circuit text as the cold Prepare's.
	EcoIdentical bool `json:"eco_identical"`
}

// MeasureEnginesCtx measures the sparse engine against the dense reference on
// the same ≥2000-vertex random profile the W/D scaling runs on, then the ECO
// re-prepare path against a cold prepare. It is the acceptance measurement of
// the matrix-free solve core: sparse must win the cold solve and Apply must
// beat a cold Prepare by a wide margin while both stay result-identical.
func MeasureEnginesCtx(ctx context.Context) (*EnginePerf, error) {
	g, err := perfGraph()
	if err != nil {
		return nil, err
	}
	ep := &EnginePerf{Vertices: g.NumVertices()}

	// Cold solves. Each repetition rebuilds its pool/matrices from nothing —
	// the point is the cold cost, not the cached one.
	const reps = 3
	var densePhi, sparsePhi int64
	var denseRegs, sparseRegs int64
	denseWall, err := bestOf(reps, func() error {
		phi, r, err := retime.MinPeriodMinAreaDense(g, nil)
		if err != nil {
			return err
		}
		densePhi, denseRegs = phi, retime.SharedRegCount(g, r)
		return ctx.Err()
	})
	if err != nil {
		return nil, fmt.Errorf("bench: dense cold solve: %w", err)
	}
	sparseWall, err := bestOf(reps, func() error {
		phi, r, err := retime.MinPeriodMinArea(g, nil)
		if err != nil {
			return err
		}
		sparsePhi, sparseRegs = phi, retime.SharedRegCount(g, r)
		return ctx.Err()
	})
	if err != nil {
		return nil, fmt.Errorf("bench: sparse cold solve: %w", err)
	}
	ep.DenseColdNS = denseWall.Nanoseconds()
	ep.SparseColdNS = sparseWall.Nanoseconds()
	ep.SparseSpeedup = float64(denseWall) / float64(sparseWall)
	ep.Identical = densePhi == sparsePhi && denseRegs == sparseRegs

	// ECO: edit the slowest gate of the profile circuit and compare a cold
	// Prepare+Anchor on the edited circuit against Apply+Anchor from a
	// Prepared of the original.
	c := gen.Random(1, 2600)
	var gate *netlist.Gate
	c.LiveGates(func(gt *netlist.Gate) {
		if gate == nil || gt.Delay > gate.Delay {
			gate = gt
		}
	})
	if gate == nil {
		return nil, fmt.Errorf("bench: profile circuit has no gates")
	}
	edit := core.Edit{Gate: gate.Name, DelayPS: gate.Delay/2 + 1}
	opts := core.Options{Parallelism: 1}

	base, err := core.Prepare(ctx, c, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: eco base prepare: %w", err)
	}
	edited := c.Clone()
	edited.Gates[gate.ID].Delay = edit.DelayPS

	var cold *core.Prepared
	prepWall, err := bestOf(reps, func() error {
		p, err := core.Prepare(ctx, edited, opts)
		cold = p
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: eco cold prepare: %w", err)
	}
	var eco *core.Prepared
	applyWall, err := bestOf(reps, func() error {
		p, err := base.Apply(edit)
		eco = p
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: eco apply: %w", err)
	}
	ep.PrepareNS = prepWall.Nanoseconds()
	ep.ApplyNS = applyWall.Nanoseconds()
	if applyWall > 0 {
		ep.EcoSpeedup = float64(prepWall) / float64(applyWall)
	}

	coldOut, _, err := cold.Anchor(ctx, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: eco cold anchor: %w", err)
	}
	ecoOut, _, err := eco.Anchor(ctx, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: eco anchor: %w", err)
	}
	coldText, err := circuitString(coldOut)
	if err != nil {
		return nil, err
	}
	ecoText, err := circuitString(ecoOut)
	if err != nil {
		return nil, err
	}
	ep.EcoIdentical = coldText == ecoText
	return ep, nil
}

// circuitString renders a circuit in the textual netlist format for
// bit-identity comparison.
func circuitString(c *netlist.Circuit) (string, error) {
	var sb strings.Builder
	if err := hdlio.Write(&sb, c); err != nil {
		return "", err
	}
	return sb.String(), nil
}
