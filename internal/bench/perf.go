package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"mcretiming/internal/gen"
	"mcretiming/internal/graph"
	"mcretiming/internal/mcgraph"
)

// PerfSchema identifies the JSON layout of Perf for downstream tooling that
// tracks the benchmark trajectory across PRs.
const PerfSchema = "mcretiming-perf/v1"

// PerfPoint is one measurement of a stage at one worker count.
type PerfPoint struct {
	Workers    int     `json:"workers"`
	WallNS     int64   `json:"wall_ns"`
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	// Identical reports that the result matched the serial (workers=1) run
	// bit for bit — the engine's core determinism guarantee.
	Identical bool `json:"identical_to_serial"`
}

// Perf is the machine-readable performance snapshot cmd/mcbench -json writes.
// GoMaxProcs/NumCPU pin down the host: measured speedup tracks the cores
// actually available, so a 1-core container reports ~1.0 at every worker
// count while the determinism column must hold everywhere.
type Perf struct {
	Schema     string      `json:"schema"`
	PR         string      `json:"pr,omitempty"`
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	WDVertices int         `json:"wd_vertices"`
	WD         []PerfPoint `json:"wd"`
	Table2     []PerfPoint `json:"table2"`
	// SolveCache is the process-cumulative graph.SolveCache traffic during
	// the Table 2 measurement (the W/D scaling runs bypass the cache): how
	// much recomputation the engine's memoization absorbed.
	SolveCache graph.CacheStats `json:"solve_cache"`
	// Explore is the design-space-sweep measurement (mcbench -explore);
	// absent when not requested.
	Explore *ExplorePerf `json:"explore,omitempty"`
	// Engines is the sparse-vs-dense solve-core and ECO measurement
	// (mcbench -engines); absent when not requested.
	Engines *EnginePerf `json:"engines,omitempty"`
	// Warm is the warm-started-probe measurement on the ≥50k-vertex
	// minperiod profile (mcbench -warm); absent when not requested.
	Warm *WarmPerf `json:"warm,omitempty"`
}

// SingleCore reports that the host cannot exhibit parallel speedup: speedup
// columns from such a run measure overhead, not scaling, and must not be
// compared against multi-core snapshots.
func (p *Perf) SingleCore() bool { return p.GoMaxProcs <= 1 || p.NumCPU <= 1 }

// perfGraph builds the ≥2000-vertex random profile the W/D scaling
// measurement (and BenchmarkComputeWD) runs on.
func perfGraph() (*graph.Graph, error) {
	m, err := mcgraph.Build(gen.Random(1, 2600))
	if err != nil {
		return nil, fmt.Errorf("bench: perf profile: %w", err)
	}
	g := m.ToGraph()
	if n := g.NumVertices(); n < 2000 {
		return nil, fmt.Errorf("bench: perf profile has %d vertices, want ≥ 2000", n)
	}
	return g, nil
}

// wdEqual reports bit-identical W/D matrices.
func wdEqual(a, b *graph.WD) bool {
	if a.N != b.N || len(a.W) != len(b.W) || len(a.D) != len(b.D) {
		return false
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			return false
		}
	}
	for i := range a.D {
		if a.D[i] != b.D[i] {
			return false
		}
	}
	return true
}

// rowsEqual compares the result columns (not the timing columns) of two
// suite runs.
func rowsEqual(a, b []*Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Name != y.Name || x.Classes != y.Classes ||
			x.Moved != y.Moved || x.Possible != y.Possible ||
			x.FF2 != y.FF2 || x.LUT2 != y.LUT2 || x.Delay2 != y.Delay2 ||
			x.FF3 != y.FF3 || x.LUT3 != y.LUT3 || x.Delay3 != y.Delay3 {
			return false
		}
	}
	return true
}

// bestOf runs fn reps times and returns the minimum wall time — single-shot
// timings are dominated by GC and page-fault noise here (a ComputeWD run on
// the perf profile allocates ~80 MB of W/D matrices), and the engine is
// deterministic so every repetition does identical work.
func bestOf(reps int, fn func() error) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// MeasurePerf runs the two trajectory measurements at each worker count:
// ComputeWD over the ≥2000-vertex random profile, and the full Table 2 suite
// through the retiming engine. Workers=1 is measured first as the serial
// reference; every other point records wall time (best of a few repetitions,
// after a warm-up), speedup vs the reference, and whether its result matched
// the reference exactly.
func MeasurePerf(workerCounts []int) (*Perf, error) {
	return MeasurePerfCtx(context.Background(), workerCounts)
}

// MeasurePerfCtx is MeasurePerf under a cancellable context; cancellation
// aborts the measurement between (and inside) repetitions.
func MeasurePerfCtx(ctx context.Context, workerCounts []int) (*Perf, error) {
	p := &Perf{
		Schema:     PerfSchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	g, err := perfGraph()
	if err != nil {
		return nil, err
	}
	p.WDVertices = g.NumVertices()
	const wdReps = 3
	if _, err := g.ComputeWDPar(ctx, 1); err != nil { // warm-up: grow the heap once
		return nil, err
	}
	var refWD *graph.WD
	wdRef, err := bestOf(wdReps, func() error {
		wd, err := g.ComputeWDPar(ctx, 1)
		refWD = wd
		return err
	})
	if err != nil {
		return nil, err
	}
	p.WD = append(p.WD, PerfPoint{Workers: 1, WallNS: wdRef.Nanoseconds(), SpeedupVs1: 1, Identical: true})
	for _, w := range workerCounts {
		if w == 1 {
			continue
		}
		var wd *graph.WD
		wall, err := bestOf(wdReps, func() error {
			res, err := g.ComputeWDPar(ctx, w)
			wd = res
			return err
		})
		if err != nil {
			return nil, err
		}
		p.WD = append(p.WD, PerfPoint{
			Workers:    w,
			WallNS:     wall.Nanoseconds(),
			SpeedupVs1: float64(wdRef) / float64(wall),
			Identical:  wdEqual(refWD, wd),
		})
	}

	const suiteReps = 2
	cachePrev := graph.TotalCacheStats()
	var refRows []*Row
	suiteRef, err := bestOf(suiteReps, func() error {
		rows, err := RunSuiteCtx(ctx, 1)
		refRows = rows
		return err
	})
	if err != nil {
		return nil, err
	}
	p.Table2 = append(p.Table2, PerfPoint{Workers: 1, WallNS: suiteRef.Nanoseconds(), SpeedupVs1: 1, Identical: true})
	for _, w := range workerCounts {
		if w == 1 {
			continue
		}
		var rows []*Row
		wall, err := bestOf(suiteReps, func() error {
			res, err := RunSuiteCtx(ctx, w)
			rows = res
			return err
		})
		if err != nil {
			return nil, err
		}
		p.Table2 = append(p.Table2, PerfPoint{
			Workers:    w,
			WallNS:     wall.Nanoseconds(),
			SpeedupVs1: float64(suiteRef) / float64(wall),
			Identical:  rowsEqual(refRows, rows),
		})
	}
	p.SolveCache = graph.TotalCacheStats().Delta(cachePrev)
	return p, nil
}

// WriteJSON writes the snapshot as indented JSON.
func (p *Perf) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
