package bench

import (
	"bytes"
	"strings"
	"testing"

	"mcretiming/internal/gen"
)

// One small circuit through the whole three-table pipeline.
func TestRunCircuitPipeline(t *testing.T) {
	c2, err := gen.Circuit(2)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunCircuit(c2)
	if err != nil {
		t.Fatal(err)
	}
	if row.Name != "C2" {
		t.Errorf("name = %q", row.Name)
	}
	if row.FF1 == 0 || row.LUT1 == 0 || row.Delay1 == 0 {
		t.Errorf("baseline row empty: %+v", row)
	}
	if row.Delay2 > row.Delay1 {
		t.Errorf("retiming worsened delay: %d -> %d", row.Delay1, row.Delay2)
	}
	if row.Classes == 0 || row.Possible == 0 {
		t.Errorf("mc statistics missing: %+v", row)
	}
	// Table 3 row must exist and the ratios be well defined.
	if row.FF3 == 0 || row.LUT3 == 0 {
		t.Errorf("no-enable row empty: %+v", row)
	}
	if r := row.Rlut2(); r <= 0 {
		t.Errorf("Rlut2 = %f", r)
	}
}

func TestPrintTablesRender(t *testing.T) {
	c2, err := gen.Circuit(2)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunCircuit(c2)
	if err != nil {
		t.Fatal(err)
	}
	rows := []*Row{row}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	PrintTable2(&buf, rows)
	PrintTable3(&buf, rows)
	PrintJustifyStats(&buf, rows)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "C2", "Rdelay", "Justifications", "CPU split",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered tables", want)
		}
	}
}

func TestFig1Comparison(t *testing.T) {
	r, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 1 economics: mc-retiming ends with fewer registers
	// than the decompose-first flow, at no delay cost.
	if r.MCFF >= r.BaseFF {
		t.Errorf("mc FF %d not below decomposed FF %d", r.MCFF, r.BaseFF)
	}
	if r.MCFF != 1 {
		t.Errorf("mc FF = %d, want 1 (the shared enable register)", r.MCFF)
	}
	if r.BaseFF != 3 {
		t.Errorf("decomposed FF = %d, want 3", r.BaseFF)
	}
	if r.MCDelay > r.BaseDelay {
		t.Errorf("mc delay %d worse than decomposed %d", r.MCDelay, r.BaseDelay)
	}
	var buf bytes.Buffer
	PrintFig1(&buf, r)
	if !strings.Contains(buf.String(), "mc-retiming saves") {
		t.Error("Fig. 1 summary line missing")
	}
}

// Lock the paper's headline suite-level claims as a regression test:
// delay improves overall, LUT area stays flat-or-better, justifications
// stay overwhelmingly local, and decomposing enables first costs more LUTs
// with no delay advantage (Table 3 vs Table 2).
func TestSuiteHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite run")
	}
	rows, err := RunSuite()
	if err != nil {
		t.Fatal(err)
	}
	tot := Sum(rows)
	if rd := ratio64(tot.Delay2, tot.Delay1); rd >= 0.9 {
		t.Errorf("total Rdelay = %.2f, want < 0.9 (paper: 0.78)", rd)
	}
	if rl := ratio(tot.LUT2, tot.LUT1); rl >= 1.05 {
		t.Errorf("total Rlut = %.2f, want <= 1.05 (paper: 0.97)", rl)
	}
	var local, global int
	for _, r := range rows {
		local += r.JustifyLocal
		global += r.JustifyGlobal
		if r.Moved > r.Possible {
			t.Errorf("%s: moved %d > possible %d", r.Name, r.Moved, r.Possible)
		}
	}
	if frac := float64(global) / float64(local+global); frac >= 0.05 {
		t.Errorf("global justification fraction %.3f, want < 0.05 (paper: <0.01)", frac)
	}
	// Table 3 vs Table 2 (the paper's totals: Rlut2 = 1.13, Rdelay2 = 1.01).
	if rl2 := ratio(tot.LUT3, tot.LUT2); rl2 <= 1.0 {
		t.Errorf("decomposed flow LUT ratio vs mc = %.2f, want > 1.0", rl2)
	}
	if rd2 := ratio64(tot.Delay3, tot.Delay2); rd2 < 0.95 {
		t.Errorf("decomposed flow delay ratio vs mc = %.2f, want >= 0.95", rd2)
	}
}
