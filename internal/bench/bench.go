// Package bench runs the paper's experiments (§6) on the synthetic suite:
//
//	Table 1 — baseline circuit characteristics after mapping,
//	Table 2 — multiple-class retiming results and ratios,
//	Table 3 — the decompose-enables-first baseline and its ratios,
//	Fig. 1  — the two-register load-enable example, mc-retiming vs
//	          decomposition.
//
// cmd/mcbench prints the tables; bench_test.go wraps them as benchmarks.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"mcretiming/internal/core"
	"mcretiming/internal/gen"
	"mcretiming/internal/netlist"
	"mcretiming/internal/xc4000"
)

// Row holds one circuit's results across the experiment pipeline.
type Row struct {
	Name string

	// Table 1: the mapped baseline.
	ASAC, EN bool
	FF1      int
	LUT1     int
	Delay1   int64

	// Table 2: mc-retiming (minarea at best delay) + remap.
	Classes       int
	Moved         int64
	Possible      int64
	FF2           int
	LUT2          int
	Delay2        int64
	JustifyLocal  int
	JustifyGlobal int
	Retries       int
	TimeModel     time.Duration
	TimeSolve     time.Duration
	TimeVerify    time.Duration
	// PassTimes holds the per-pass wall-clock breakdown of the Table 2
	// retiming run; TimeModel/TimeSolve/TimeVerify are its coarse aggregates.
	PassTimes []core.PassTime

	// Table 3: enables decomposed before retiming.
	FF3    int
	LUT3   int
	Delay3 int64
}

// Rlut2 returns Table 2's LUT ratio vs the baseline.
func (r *Row) Rlut2() float64 { return ratio(r.LUT2, r.LUT1) }

// Rdelay2 returns Table 2's delay ratio vs the baseline.
func (r *Row) Rdelay2() float64 { return ratio64(r.Delay2, r.Delay1) }

func ratio(a, b int) float64     { return float64(a) / float64(b) }
func ratio64(a, b int64) float64 { return float64(a) / float64(b) }

// RunCircuit executes the full experiment pipeline on one generated circuit
// at the default engine parallelism (GOMAXPROCS).
func RunCircuit(c *netlist.Circuit) (*Row, error) {
	return RunCircuitPar(c, 0)
}

// RunCircuitPar is RunCircuit with both retiming runs at the given engine
// parallelism (0 = GOMAXPROCS, 1 = serial). Results are identical at every
// setting; only the timing columns change.
func RunCircuitPar(c *netlist.Circuit, workers int) (*Row, error) {
	return RunCircuitCtx(context.Background(), c, workers)
}

// RunCircuitCtx is RunCircuitPar under a cancellable context: cancellation
// (e.g. Ctrl-C in cmd/mcbench) aborts the retiming runs mid-solve and
// surfaces as a context error instead of the process dying mid-write.
func RunCircuitCtx(ctx context.Context, c *netlist.Circuit, workers int) (*Row, error) {
	row := &Row{Name: c.Name}

	// Table 1 flow: decompose synchronous set/clear (XC4000E registers have
	// none), map, measure.
	mapped, err := xc4000.Map(xc4000.DecomposeSyncResets(c.Clone()))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.Name, err)
	}
	st1, err := xc4000.Report(mapped)
	if err != nil {
		return nil, err
	}
	row.ASAC, row.EN = st1.HasAR, st1.HasEN
	row.FF1, row.LUT1, row.Delay1 = st1.FFs, st1.LUTs+st1.Carry, st1.Delay

	// Table 2 flow: "retime" on the mapped netlist, then "remap".
	retimed, rep, err := core.RetimeCtx(ctx, mapped, core.Options{Objective: core.MinAreaAtMinPeriod, Parallelism: workers})
	if err != nil {
		return nil, fmt.Errorf("%s: retime: %w", c.Name, err)
	}
	remapped, err := xc4000.Map(retimed)
	if err != nil {
		return nil, fmt.Errorf("%s: remap: %w", c.Name, err)
	}
	st2, err := xc4000.Report(remapped)
	if err != nil {
		return nil, err
	}
	row.Classes = rep.NumClasses
	row.Moved, row.Possible = rep.StepsMoved, rep.StepsPossible
	row.FF2, row.LUT2, row.Delay2 = st2.FFs, st2.LUTs+st2.Carry, st2.Delay
	row.JustifyLocal, row.JustifyGlobal = rep.JustifyLocal, rep.JustifyGlobal
	row.Retries = rep.Retries
	row.TimeModel, row.TimeSolve, row.TimeVerify = rep.TimeModel, rep.TimeSolve, rep.TimeVerify
	row.PassTimes = rep.PassTimes

	// Table 3 flow: decompose the enables first, then retime and remap.
	noen, err := xc4000.Map(xc4000.DecomposeEnables(xc4000.DecomposeSyncResets(c.Clone())))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.Name, err)
	}
	noenRetimed, _, err := core.RetimeCtx(ctx, noen, core.Options{Objective: core.MinAreaAtMinPeriod, Parallelism: workers})
	if err != nil {
		return nil, fmt.Errorf("%s: no-enable retime: %w", c.Name, err)
	}
	noenRemapped, err := xc4000.Map(noenRetimed)
	if err != nil {
		return nil, err
	}
	st3, err := xc4000.Report(noenRemapped)
	if err != nil {
		return nil, err
	}
	row.FF3, row.LUT3, row.Delay3 = st3.FFs, st3.LUTs+st3.Carry, st3.Delay
	return row, nil
}

// RunSuite executes the pipeline over the whole generated suite at the
// default engine parallelism.
func RunSuite() ([]*Row, error) {
	return RunSuitePar(0)
}

// RunSuitePar is RunSuite at the given engine parallelism (see RunCircuitPar).
func RunSuitePar(workers int) ([]*Row, error) {
	return RunSuiteCtx(context.Background(), workers)
}

// RunSuiteCtx is RunSuitePar under a cancellable context; cancellation stops
// between (and inside) circuits with a context error.
func RunSuiteCtx(ctx context.Context, workers int) ([]*Row, error) {
	suite, err := gen.Suite()
	if err != nil {
		return nil, err
	}
	var rows []*Row
	for _, c := range suite {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row, err := RunCircuitCtx(ctx, c, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Totals aggregates rows the way the paper's "Totals" lines do.
type Totals struct {
	FF1, LUT1, FF2, LUT2, FF3, LUT3 int
	Delay1, Delay2, Delay3          int64
}

// Sum computes the totals over rows.
func Sum(rows []*Row) Totals {
	var t Totals
	for _, r := range rows {
		t.FF1 += r.FF1
		t.LUT1 += r.LUT1
		t.Delay1 += r.Delay1
		t.FF2 += r.FF2
		t.LUT2 += r.LUT2
		t.Delay2 += r.Delay2
		t.FF3 += r.FF3
		t.LUT3 += r.LUT3
		t.Delay3 += r.Delay3
	}
	return t
}

// ns renders picoseconds as the paper's nanosecond columns.
func ns(ps int64) float64 { return float64(ps) / 1000 }

// PrintTable1 writes the Table 1 analogue.
func PrintTable1(w io.Writer, rows []*Row) {
	fmt.Fprintln(w, "Table 1: Circuit Characteristics (mapped baseline)")
	fmt.Fprintf(w, "%-6s %-6s %-4s %6s %6s %8s\n", "Name", "AS/AC", "EN", "#FF", "#LUT", "Delay")
	mark := func(b bool) string {
		if b {
			return "y"
		}
		return "-"
	}
	t := Sum(rows)
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-6s %-4s %6d %6d %8.1f\n",
			r.Name, mark(r.ASAC), mark(r.EN), r.FF1, r.LUT1, ns(r.Delay1))
	}
	fmt.Fprintf(w, "%-6s %-6s %-4s %6d %6d %8.1f\n", "Totals", "", "", t.FF1, t.LUT1, ns(t.Delay1))
}

// PrintTable2 writes the Table 2 analogue.
func PrintTable2(w io.Writer, rows []*Row) {
	fmt.Fprintln(w, "Table 2: Multiple-Class Retiming Results")
	fmt.Fprintf(w, "%-6s %7s %12s %6s %6s %8s %6s %7s\n",
		"Name", "#Class", "#Step", "#FF", "#LUT", "Delay", "Rlut", "Rdelay")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %7d %5d/%-6d %6d %6d %8.1f %6.2f %7.2f\n",
			r.Name, r.Classes, r.Moved, r.Possible, r.FF2, r.LUT2, ns(r.Delay2),
			r.Rlut2(), r.Rdelay2())
	}
	t := Sum(rows)
	fmt.Fprintf(w, "%-6s %7s %12s %6d %6d %8.1f %6.2f %7.2f\n",
		"Total", "", "", t.FF2, t.LUT2, ns(t.Delay2),
		ratio(t.LUT2, t.LUT1), ratio64(t.Delay2, t.Delay1))
}

// PrintTable3 writes the Table 3 analogue.
func PrintTable3(w io.Writer, rows []*Row) {
	fmt.Fprintln(w, "Table 3: Retiming Results without using Load Enable Inputs")
	fmt.Fprintf(w, "%-6s %6s %6s %8s %6s %8s %6s %8s\n",
		"Name", "#FF", "#LUT", "Delay", "Rlut1", "Rdelay1", "Rlut2", "Rdelay2")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %6d %6d %8.1f %6.2f %8.2f %6.2f %8.2f\n",
			r.Name, r.FF3, r.LUT3, ns(r.Delay3),
			ratio(r.LUT3, r.LUT1), ratio64(r.Delay3, r.Delay1),
			ratio(r.LUT3, r.LUT2), ratio64(r.Delay3, r.Delay2))
	}
	t := Sum(rows)
	fmt.Fprintf(w, "%-6s %6d %6d %8.1f %6.2f %8.2f %6.2f %8.2f\n",
		"Totals", t.FF3, t.LUT3, ns(t.Delay3),
		ratio(t.LUT3, t.LUT1), ratio64(t.Delay3, t.Delay1),
		ratio(t.LUT3, t.LUT2), ratio64(t.Delay3, t.Delay2))
}

// PrintJustifyStats writes the §6 justification and runtime statistics.
func PrintJustifyStats(w io.Writer, rows []*Row) {
	var local, global, retries int
	var tm, ts, tv time.Duration
	for _, r := range rows {
		local += r.JustifyLocal
		global += r.JustifyGlobal
		retries += r.Retries
		tm += r.TimeModel
		ts += r.TimeSolve
		tv += r.TimeVerify
	}
	tot := tm + ts + tv
	fmt.Fprintf(w, "Justifications: %d local, %d global (%.2f%% global), %d re-retimings\n",
		local, global, 100*float64(global)/float64(max(1, local+global)), retries)
	fmt.Fprintf(w, "CPU split: %.0f%% retiming engine, %.0f%% relocation+reset states, %.0f%% mc-graph/classes/bounds (total %v)\n",
		pct(ts, tot), pct(tv, tot), pct(tm, tot), tot.Round(time.Millisecond))
}

func pct(d, tot time.Duration) float64 {
	if tot == 0 {
		return 0
	}
	return 100 * float64(d) / float64(tot)
}

// PrintPassTimes writes the per-pass wall-clock breakdown of the Table 2
// retiming runs: one column per pipeline pass, one row per circuit. The
// column set is the union over all rows, in first-seen pipeline order, so
// the table stays correct if a pass is skipped for some circuit.
func PrintPassTimes(w io.Writer, rows []*Row) {
	var order []string
	seen := make(map[string]bool)
	for _, r := range rows {
		for _, pt := range r.PassTimes {
			if !seen[pt.Name] {
				seen[pt.Name] = true
				order = append(order, pt.Name)
			}
		}
	}
	if len(order) == 0 {
		return
	}
	fmt.Fprintln(w, "Per-pass retiming runtime (ms)")
	fmt.Fprintf(w, "%-6s", "Name")
	for _, name := range order {
		fmt.Fprintf(w, " %*s", max(9, len(name)), name)
	}
	fmt.Fprintln(w)
	totals := make(map[string]time.Duration)
	for _, r := range rows {
		byName := make(map[string]time.Duration, len(r.PassTimes))
		for _, pt := range r.PassTimes {
			byName[pt.Name] = pt.Wall
			totals[pt.Name] += pt.Wall
		}
		fmt.Fprintf(w, "%-6s", r.Name)
		for _, name := range order {
			fmt.Fprintf(w, " %*.2f", max(9, len(name)), float64(byName[name].Microseconds())/1000)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-6s", "Totals")
	for _, name := range order {
		fmt.Fprintf(w, " %*.2f", max(9, len(name)), float64(totals[name].Microseconds())/1000)
	}
	fmt.Fprintln(w)
}
