package bench

import (
	"context"
	"fmt"
	"slices"
	"time"

	"mcretiming/internal/gen"
	"mcretiming/internal/graph"
	"mcretiming/internal/mcgraph"
)

// WarmPerf is the PR8 warm-start measurement: minperiod on the ≥50k-vertex
// scale-pipeline profile, solved cold (the PR6 path — every binary-search
// probe re-seeds SPFA), warm (one probe ladder across the search), and with
// the arrival hybrid. All three must agree bit for bit; the speedup column is
// warm vs cold.
type WarmPerf struct {
	Vertices int   `json:"vertices"`
	PeriodPS int64 `json:"period_ps"`
	// BoundsNS is the ComputeBoundsPar + AreaGraphPar model time, measured
	// once — it is common to every engine and excluded from the solve walls.
	BoundsNS  int64   `json:"bounds_ns"`
	ColdNS    int64   `json:"cold_ns"`
	WarmNS    int64   `json:"warm_ns"`
	ArrivalNS int64   `json:"arrival_ns"`
	Speedup   float64 `json:"speedup"` // cold / warm
	// Identical reports the warm and arrival retimings matched the cold
	// reference exactly.
	Identical bool `json:"identical"`
	// SPFAColdStarts counts full (cold) SPFA solves per search: the warm
	// search performs exactly one no matter how many probes it runs; the cold
	// search pays one per probe.
	SPFAColdStartsCold int64 `json:"spfa_cold_starts_cold"`
	SPFAColdStartsWarm int64 `json:"spfa_cold_starts_warm"`
}

// warmProfile builds the ≥50k-vertex minperiod profile: a scale-family
// pipeline like TestScaleLarge's, but deep (1200 stages) rather than wide.
// Depth is what separates the engines: every cold probe re-propagates labels
// through the whole pipeline depth, while a warm probe only relaxes the delta
// from the previous rung, so the deep shape measures the re-propagation cost
// the ladder exists to eliminate (the wide-shallow shape understates it).
const (
	warmProfileWidth  = 32
	warmProfileStages = 1200
)

// MeasureWarmCtx measures cold vs warm vs arrival minperiod on the 50k-class
// profile. Each engine run is best-of-2 with a private cut pool, so no state
// leaks between the variants.
func MeasureWarmCtx(ctx context.Context) (*WarmPerf, error) {
	c, err := gen.ScalePipeline(1, warmProfileWidth, warmProfileStages, gen.ClassMix{Plain: 1, EN: 1})
	if err != nil {
		return nil, fmt.Errorf("bench: warm profile: %w", err)
	}
	m, err := mcgraph.Build(c)
	if err != nil {
		return nil, fmt.Errorf("bench: warm profile: %w", err)
	}
	t0 := time.Now()
	info, err := m.ComputeBoundsPar(ctx, 1)
	if err != nil {
		return nil, err
	}
	g, bounds, err := m.AreaGraphPar(ctx, info, 1)
	if err != nil {
		return nil, err
	}
	wp := &WarmPerf{Vertices: g.NumVertices(), BoundsNS: time.Since(t0).Nanoseconds()}

	const reps = 2
	type result struct {
		phi int64
		r   []int32
	}
	run := func(eng func() *graph.Engine) (result, int64, time.Duration, error) {
		var res result
		var starts int64
		wall, err := bestOf(reps, func() error {
			cs0 := graph.ColdStartCount()
			phi, r, err := g.MinPeriodLazyEng(ctx, bounds, nil, eng())
			if err != nil {
				return err
			}
			res = result{phi: phi, r: r}
			starts = graph.ColdStartCount() - cs0
			return nil
		})
		return res, starts, wall, err
	}

	cold, coldStarts, coldWall, err := run(func() *graph.Engine {
		return &graph.Engine{Workers: 1, ColdProbes: true}
	})
	if err != nil {
		return nil, err
	}
	warm, warmStarts, warmWall, err := run(func() *graph.Engine {
		return &graph.Engine{Workers: 1, Ladder: graph.NewProbeLadder()}
	})
	if err != nil {
		return nil, err
	}
	var arr result
	arrWall, err := bestOf(reps, func() error {
		phi, r, err := g.MinPeriodArrivalEng(ctx, bounds, nil, &graph.Engine{Workers: 1, Ladder: graph.NewProbeLadder()})
		if err != nil {
			return err
		}
		arr = result{phi: phi, r: r}
		return nil
	})
	if err != nil {
		return nil, err
	}

	same := func(a, b result) bool {
		return a.phi == b.phi && slices.Equal(a.r, b.r)
	}

	wp.PeriodPS = cold.phi
	wp.ColdNS = coldWall.Nanoseconds()
	wp.WarmNS = warmWall.Nanoseconds()
	wp.ArrivalNS = arrWall.Nanoseconds()
	wp.Speedup = float64(coldWall) / float64(warmWall)
	wp.Identical = same(cold, warm) && same(cold, arr)
	wp.SPFAColdStartsCold = coldStarts
	wp.SPFAColdStartsWarm = warmStarts
	return wp, nil
}
