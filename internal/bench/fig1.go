package bench

import (
	"context"
	"fmt"
	"io"

	"mcretiming/internal/core"
	"mcretiming/internal/netlist"
	"mcretiming/internal/xc4000"
)

// Fig1Result compares the paper's Fig. 1 alternatives on the two-register
// load-enable circuit: multiple-class retiming moves the layer as-is
// (circuit b), while the conventional flow decomposes the enables into
// feedback multiplexers first (circuit c) and pays two extra registers and
// two multiplexers after the forward move (circuit d).
type Fig1Result struct {
	OrigFF, OrigLUT int
	OrigDelay       int64
	MCFF, MCLUT     int
	MCDelay         int64
	BaseFF, BaseLUT int
	BaseDelay       int64
}

// fig1Circuit builds Fig. 1a) plus a slow downstream gate so that minperiod
// retiming wants the register layer moved forward across the AND.
func fig1Circuit() *netlist.Circuit {
	c := netlist.New("fig1")
	i1 := c.AddInput("i1")
	i2 := c.AddInput("i2")
	en := c.AddInput("en")
	clk := c.AddInput("clk")
	r1, q1 := c.AddReg("r1", i1, clk)
	r2, q2 := c.AddReg("r2", i2, clk)
	c.Regs[r1].EN = en
	c.Regs[r2].EN = en
	_, g := c.AddGate("g", netlist.And, []netlist.SignalID{q1, q2}, xc4000.DelayLUT+xc4000.DelayRoute)
	// Downstream depth that dominates the clock period.
	sig := g
	for i := 0; i < 3; i++ {
		_, sig = c.AddGate("", netlist.Xor, []netlist.SignalID{sig, i1, i2}, xc4000.DelayLUT+xc4000.DelayRoute)
	}
	c.MarkOutput(sig)
	return c
}

// RunFig1 runs both flows of Fig. 1 and returns the comparison.
func RunFig1() (*Fig1Result, error) {
	return RunFig1Ctx(context.Background())
}

// RunFig1Ctx is RunFig1 under a cancellable context.
func RunFig1Ctx(ctx context.Context) (*Fig1Result, error) {
	res := &Fig1Result{}

	orig := fig1Circuit()
	st, err := xc4000.Report(orig)
	if err != nil {
		return nil, err
	}
	res.OrigFF, res.OrigLUT, res.OrigDelay = st.FFs, st.LUTs+countSimple(orig), st.Delay

	// Multiple-class flow: retime the generic registers directly.
	mc, _, err := core.RetimeCtx(ctx, orig, core.Options{Objective: core.MinAreaAtMinPeriod})
	if err != nil {
		return nil, err
	}
	mcMapped, err := xc4000.Map(mc)
	if err != nil {
		return nil, err
	}
	stMC, err := xc4000.Report(mcMapped)
	if err != nil {
		return nil, err
	}
	res.MCFF, res.MCLUT, res.MCDelay = stMC.FFs, stMC.LUTs, stMC.Delay

	// Conventional flow: decompose the enables, then basic retiming.
	base := xc4000.DecomposeEnables(fig1Circuit())
	baseRetimed, _, err := core.RetimeCtx(ctx, base, core.Options{Objective: core.MinAreaAtMinPeriod})
	if err != nil {
		return nil, err
	}
	baseMapped, err := xc4000.Map(baseRetimed)
	if err != nil {
		return nil, err
	}
	stBase, err := xc4000.Report(baseMapped)
	if err != nil {
		return nil, err
	}
	res.BaseFF, res.BaseLUT, res.BaseDelay = stBase.FFs, stBase.LUTs, stBase.Delay
	return res, nil
}

// countSimple counts unmapped logic gates (the pre-map Fig. 1 circuit).
func countSimple(c *netlist.Circuit) int {
	n := 0
	c.LiveGates(func(g *netlist.Gate) {
		if g.Type != netlist.Lut && g.Type != netlist.Const0 && g.Type != netlist.Const1 {
			n++
		}
	})
	return n
}

// PrintFig1 writes the Fig. 1 comparison.
func PrintFig1(w io.Writer, r *Fig1Result) {
	fmt.Fprintln(w, "Fig. 1: retiming registers with load enables")
	fmt.Fprintf(w, "%-28s %4s %5s %8s\n", "", "#FF", "#LUT", "Delay")
	fmt.Fprintf(w, "%-28s %4d %5d %8.1f\n", "a) original", r.OrigFF, r.OrigLUT, ns(r.OrigDelay))
	fmt.Fprintf(w, "%-28s %4d %5d %8.1f\n", "b) mc-retiming", r.MCFF, r.MCLUT, ns(r.MCDelay))
	fmt.Fprintf(w, "%-28s %4d %5d %8.1f\n", "d) decompose EN + retiming", r.BaseFF, r.BaseLUT, ns(r.BaseDelay))
	fmt.Fprintf(w, "mc-retiming saves %d registers and %d LUTs at equal-or-better delay\n",
		r.BaseFF-r.MCFF, r.BaseLUT-r.MCLUT)
}
