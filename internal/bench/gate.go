package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// gateRegression is the wall-clock regression the gate tolerates against a
// committed baseline snapshot before failing: 10%.
const gateRegression = 1.10

// gateWarmSpeedup is the self-relative floor the warm-started minperiod
// search must clear over the cold path on the 50k profile. Unlike the
// baseline comparison it is host-independent (both sides run on the same
// machine in the same process), so it is enforced unconditionally.
const gateWarmSpeedup = 2.0

// LoadPerf reads a committed performance snapshot (a BENCH_*.json file).
func LoadPerf(path string) (*Perf, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: gate baseline: %w", err)
	}
	var p Perf
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("bench: gate baseline %s: %w", path, err)
	}
	if p.Schema != PerfSchema {
		return nil, fmt.Errorf("bench: gate baseline %s: schema %q, want %q", path, p.Schema, PerfSchema)
	}
	return &p, nil
}

// Gate compares the current snapshot against a committed baseline and
// returns the list of violations (empty = pass).
//
// Two classes of check:
//
//   - Self-relative (always enforced): the warm minperiod search must be at
//     least gateWarmSpeedup× the cold path, bit-identical to it, and
//     structurally warm — exactly one cold SPFA start for the whole search.
//     All of these compare the run against itself, so they are robust to
//     machine differences and absolute-time noise.
//   - Baseline-relative (host-aware): the serial Table-2 wall time must not
//     regress more than gateRegression× the committed snapshot's. Comparing
//     wall clocks across different machines measures the machines, not the
//     code, so this check is skipped — with a note in skipped — when the
//     host shape (GOMAXPROCS/NumCPU) differs from the baseline's. The warm
//     profile's wall gets no baseline check at all: at ~100ms it sits below
//     this-class hardware's run-to-run noise (±25% observed), so the 10%
//     tolerance would flag noise, and a real warm-path regression already
//     trips the structural checks (a broken ladder re-seeds per probe, a
//     broken certificate path drops the speedup under the floor).
func Gate(cur, base *Perf) (violations, skipped []string) {
	if cur.Warm != nil {
		if !cur.Warm.Identical {
			violations = append(violations, "warm/arrival minperiod result diverged from the cold reference")
		}
		if cur.Warm.Speedup < gateWarmSpeedup {
			violations = append(violations, fmt.Sprintf(
				"warm minperiod speedup %.2fx below the %.1fx floor (cold %.0fms, warm %.0fms)",
				cur.Warm.Speedup, gateWarmSpeedup,
				float64(cur.Warm.ColdNS)/1e6, float64(cur.Warm.WarmNS)/1e6))
		}
		if cur.Warm.SPFAColdStartsWarm != 1 {
			violations = append(violations, fmt.Sprintf(
				"warm minperiod search performed %d cold SPFA starts, want exactly 1",
				cur.Warm.SPFAColdStartsWarm))
		}
	}
	if base == nil {
		return violations, skipped
	}
	if base.GoMaxProcs != cur.GoMaxProcs || base.NumCPU != cur.NumCPU {
		skipped = append(skipped, fmt.Sprintf(
			"baseline wall comparison: host shape differs (baseline %d/%d procs, current %d/%d)",
			base.GoMaxProcs, base.NumCPU, cur.GoMaxProcs, cur.NumCPU))
		return violations, skipped
	}
	serialWall := func(pts []PerfPoint) int64 {
		for _, pt := range pts {
			if pt.Workers == 1 {
				return pt.WallNS
			}
		}
		return 0
	}
	if b, c := serialWall(base.Table2), serialWall(cur.Table2); b > 0 && c > 0 &&
		float64(c) > float64(b)*gateRegression {
		violations = append(violations, fmt.Sprintf(
			"table2 serial wall regressed %.0fms -> %.0fms (>%.0f%%)",
			float64(b)/1e6, float64(c)/1e6, (gateRegression-1)*100))
	}
	return violations, skipped
}
