package bench

import (
	"strings"
	"testing"
)

func warmOK() *WarmPerf {
	return &WarmPerf{
		ColdNS:             400e6,
		WarmNS:             100e6,
		Speedup:            4.0,
		Identical:          true,
		SPFAColdStartsCold: 13,
		SPFAColdStartsWarm: 1,
	}
}

func perfOK() *Perf {
	return &Perf{
		Schema:     PerfSchema,
		GoMaxProcs: 2,
		NumCPU:     2,
		Table2:     []PerfPoint{{Workers: 1, WallNS: 800e6}},
		Warm:       warmOK(),
	}
}

func TestGateCleanPass(t *testing.T) {
	v, s := Gate(perfOK(), perfOK())
	if len(v) != 0 || len(s) != 0 {
		t.Fatalf("violations=%v skipped=%v, want none", v, s)
	}
}

// The self-relative checks fire with or without a baseline.
func TestGateSelfRelative(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mut   func(*Perf)
		match string
	}{
		{"speedup below floor", func(p *Perf) {
			p.Warm.Speedup = 1.5
		}, "below the"},
		{"diverged result", func(p *Perf) {
			p.Warm.Identical = false
		}, "diverged"},
		{"warm search re-seeded per probe", func(p *Perf) {
			p.Warm.SPFAColdStartsWarm = 13
		}, "cold SPFA starts"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cur := perfOK()
			tc.mut(cur)
			for _, base := range []*Perf{nil, perfOK()} {
				v, _ := Gate(cur, base)
				if len(v) != 1 || !strings.Contains(v[0], tc.match) {
					t.Fatalf("base=%v: violations %v, want one matching %q", base != nil, v, tc.match)
				}
			}
		})
	}
}

func TestGateTable2Regression(t *testing.T) {
	cur := perfOK()
	cur.Table2[0].WallNS = 1000e6 // 25% over the 800ms baseline
	v, _ := Gate(cur, perfOK())
	if len(v) != 1 || !strings.Contains(v[0], "table2") {
		t.Fatalf("violations %v, want one table2 regression", v)
	}
}

// Wall comparisons against a baseline from a different host shape measure the
// hosts, not the code: they must be skipped, not failed.
func TestGateHostShapeSkip(t *testing.T) {
	cur := perfOK()
	cur.Table2[0].WallNS = 10000e6
	base := perfOK()
	base.NumCPU = 64
	v, s := Gate(cur, base)
	if len(v) != 0 {
		t.Fatalf("violations %v, want none on host-shape mismatch", v)
	}
	if len(s) != 1 || !strings.Contains(s[0], "host shape") {
		t.Fatalf("skipped %v, want one host-shape note", s)
	}
}

// The warm profile's absolute wall is deliberately NOT baseline-gated (it is
// below run-to-run noise on CI-class hardware); only structural regressions
// fail the gate.
func TestGateWarmWallNotBaselineGated(t *testing.T) {
	cur := perfOK()
	cur.Warm.ColdNS = 1200e6
	cur.Warm.WarmNS = 300e6 // 3x the baseline's wall, but still 4x speedup
	v, _ := Gate(cur, perfOK())
	if len(v) != 0 {
		t.Fatalf("violations %v, want none for a noisy-but-structurally-sound warm wall", v)
	}
}
