package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"time"

	"mcretiming/internal/core"
	"mcretiming/internal/explore"
	"mcretiming/internal/gen"
	"mcretiming/internal/graph"
	"mcretiming/internal/store"
)

// ExplorePerf measures the design-space sweep (internal/explore) on the
// ≥2000-vertex random profile circuit, three ways over the same points:
//
//   - cold:  a fresh sweep into an empty result store — shared Prepare, W/D,
//     and cut pool across the points, every point solved;
//   - warm:  the same sweep against the populated store — every point loads;
//   - naive: one independent Retime call per swept period, the way a caller
//     without the explore subsystem would chart the front.
//
// Cold vs naive attributes the sweep's structural reuse; warm vs cold
// attributes the store. The warm front must be byte-identical to the cold one
// (WarmIdentical) — that is the subsystem's determinism contract.
type ExplorePerf struct {
	Circuit       string           `json:"circuit"`
	Points        int              `json:"points"` // solved points, anchor included
	ColdNS        int64            `json:"cold_ns"`
	WarmNS        int64            `json:"warm_ns"`
	NaiveNS       int64            `json:"naive_ns"`
	WarmHits      int              `json:"warm_hits"`
	WarmMisses    int              `json:"warm_misses"`
	WarmSpeedup   float64          `json:"warm_speedup_vs_cold"`
	NaiveSpeedup  float64          `json:"cold_speedup_vs_naive"`
	WarmIdentical bool             `json:"warm_identical_to_cold"`
	ColdCache     graph.CacheStats `json:"cold_solve_cache"` // cache traffic of the cold sweep
}

// MeasureExploreCtx runs the three-way sweep measurement, capping the sweep
// at maxPoints (one full solve on the profile circuit takes seconds, so the
// cap keeps the measurement tractable; 0 sweeps every candidate period).
// The result store lives in a temp directory that is removed before return.
func MeasureExploreCtx(ctx context.Context, maxPoints int) (*ExplorePerf, error) {
	c := gen.Random(1, 2600)
	dir, err := os.MkdirTemp("", "mcbench-explore-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	sweep := func() (*explore.Front, time.Duration, error) {
		st, err := store.Open(dir)
		if err != nil {
			return nil, 0, err
		}
		t0 := time.Now()
		front, err := explore.Sweep(ctx, c.Clone(), explore.Options{MaxPoints: maxPoints, Store: st})
		return front, time.Since(t0), err
	}

	prev := graph.TotalCacheStats()
	cold, coldWall, err := sweep()
	if err != nil {
		return nil, fmt.Errorf("bench: cold sweep: %w", err)
	}
	coldCache := graph.TotalCacheStats().Delta(prev)

	// A fresh Store handle on the same directory, so the warm hit/miss
	// counters start clean.
	warm, warmWall, err := sweep()
	if err != nil {
		return nil, fmt.Errorf("bench: warm sweep: %w", err)
	}
	var coldJSON, warmJSON bytes.Buffer
	if err := cold.WriteJSON(&coldJSON); err != nil {
		return nil, err
	}
	if err := warm.WriteJSON(&warmJSON); err != nil {
		return nil, err
	}

	// Naive: re-solve exactly the periods the sweep solved, each as an
	// independent single-point Retime (no shared Prepare, W/D, or cuts).
	t0 := time.Now()
	for i, phi := range cold.SweptPeriods {
		opts := core.Options{Objective: core.MinAreaAtPeriod, TargetPeriod: phi}
		if i == 0 {
			// The anchor: a naive caller does not know the minimum period
			// and must run the full minperiod+minarea flow to find it.
			opts = core.Options{Objective: core.MinAreaAtMinPeriod}
		}
		if _, _, err := core.RetimeCtx(ctx, c.Clone(), opts); err != nil {
			return nil, fmt.Errorf("bench: naive solve at %d ps: %w", phi, err)
		}
	}
	naiveWall := time.Since(t0)

	return &ExplorePerf{
		Circuit:       c.Name,
		Points:        len(cold.SweptPeriods),
		ColdNS:        coldWall.Nanoseconds(),
		WarmNS:        warmWall.Nanoseconds(),
		NaiveNS:       naiveWall.Nanoseconds(),
		WarmHits:      warm.StoreHits,
		WarmMisses:    warm.StoreMisses,
		WarmSpeedup:   float64(coldWall) / float64(warmWall),
		NaiveSpeedup:  float64(naiveWall) / float64(coldWall),
		WarmIdentical: bytes.Equal(coldJSON.Bytes(), warmJSON.Bytes()),
		ColdCache:     coldCache,
	}, nil
}
