package mcretiming

import (
	"context"
	"io"

	"mcretiming/internal/core"
	"mcretiming/internal/xc4000"
)

// FlowOptions configures RunFlow, the one-call version of the paper's
// experimental script: optimize → decompose unsupported pins → map →
// retime → remap.
type FlowOptions struct {
	// Clean runs the pre-mapping cleanup passes (constant folding, buffer
	// sweep, dead logic removal, structural hashing) first.
	Clean bool
	// DecomposeEN decomposes load enables before mapping — the Table 3
	// baseline. Leave false for multiple-class retiming proper.
	DecomposeEN bool
	// Retime configures the retiming step (zero value = minarea at best
	// period, all paper mechanisms on).
	Retime Options
	// Trace, when non-nil, receives the retiming step's spans and counters
	// (it overrides Retime.Trace). The mapping phases are not traced.
	Trace TraceSink
}

// FlowResult carries every intermediate artifact of a flow run.
type FlowResult struct {
	Mapped  *Circuit // after decomposition + technology mapping
	Retimed *Circuit // after retiming + remap
	Before  FPGAStats
	After   FPGAStats
	Report  *Report
}

// RunFlow runs the full experimental flow on c (which is not modified).
func RunFlow(c *Circuit, opts FlowOptions) (*FlowResult, error) {
	return RunFlowCtx(context.Background(), c, opts)
}

// RunFlowCtx is RunFlow with cooperative cancellation of the retiming step
// (the mapping phases are fast and run to completion).
func RunFlowCtx(ctx context.Context, c *Circuit, opts FlowOptions) (*FlowResult, error) {
	work := c.Clone()
	if opts.Clean {
		var err error
		if work, _, err = Clean(work); err != nil {
			return nil, err
		}
		if work, _, err = Strash(work); err != nil {
			return nil, err
		}
	}
	work = DecomposeSyncResets(work)
	if opts.DecomposeEN {
		work = DecomposeEnables(work)
	}
	mapped, err := MapXC4000(work)
	if err != nil {
		return nil, err
	}
	res := &FlowResult{Mapped: mapped}
	if res.Before, err = ReportFPGA(mapped); err != nil {
		return nil, err
	}
	ropts := opts.Retime
	if opts.Trace != nil {
		ropts.Trace = opts.Trace
	}
	retimed, rep, err := core.RetimeCtx(ctx, mapped, ropts)
	if err != nil {
		return nil, err
	}
	res.Report = rep
	if res.Retimed, err = MapXC4000(retimed); err != nil {
		return nil, err
	}
	if res.After, err = ReportFPGA(res.Retimed); err != nil {
		return nil, err
	}
	return res, nil
}

// CriticalPathElement is one gate on a reported critical path.
type CriticalPathElement = xc4000.PathElement

// CriticalPath returns the slowest combinational path of c and its delay.
func CriticalPath(c *Circuit) ([]CriticalPathElement, int64, error) {
	return xc4000.CriticalPath(c)
}

// PrintCriticalPath writes a human-readable timing report for c.
func PrintCriticalPath(w io.Writer, c *Circuit) error {
	return xc4000.PrintCriticalPath(w, c)
}

// SlackEntry is one endpoint's setup slack.
type SlackEntry = xc4000.SlackEntry

// SlackReport computes per-endpoint setup slacks against a target period
// (0 = the circuit's own maximum delay), worst first.
func SlackReport(c *Circuit, target int64) ([]SlackEntry, error) {
	return xc4000.SlackReport(c, target)
}

// PrintSlackReport writes the n worst endpoint slacks (all when n <= 0).
func PrintSlackReport(w io.Writer, c *Circuit, target int64, n int) error {
	return xc4000.PrintSlackReport(w, c, target, n)
}
