package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestInterruptExitsWithCode4 is the mcbench half of the CLI signal
// contract: SIGINT during a suite run (pinned mid-solve by a failpoint
// sleep) cancels the run context and exits with the documented code 4.
func TestInterruptExitsWithCode4(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signals")
	}
	if testing.Short() {
		t.Skip("builds the binary")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "mcbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-table", "2")
	cmd.Env = append(os.Environ(), "MCRETIMING_FAILPOINTS=graph.minperiod=sleep(30s)")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	start := time.Now()
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	err := cmd.Wait()
	elapsed := time.Since(start)
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("wait: %v (stderr: %s)", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 4 {
		t.Fatalf("exit code = %d, want 4 (stderr: %s)", code, stderr.String())
	}
	if elapsed > 10*time.Second {
		t.Fatalf("took %v to exit after SIGINT", elapsed)
	}
}
