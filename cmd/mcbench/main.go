// Command mcbench regenerates the paper's experimental tables and figures
// on the synthetic circuit suite.
//
// Usage:
//
//	mcbench [-table 1|2|3] [-fig1] [-passes] [-j N]
//	        [-json out.json [-pr label] [-explore [-explore-points N]] [-engines]]
//
// With no flags it runs everything. -passes adds the per-pass runtime
// breakdown of the retiming pipeline under Table 2. -j sets the engine
// parallelism of the retiming runs (0 = GOMAXPROCS); results are identical
// at every setting. -json skips the tables and instead writes a
// machine-readable performance snapshot — W/D and full-suite wall times at
// worker counts 1, 2 and GOMAXPROCS, with speedups, a determinism check, and
// the solve-cache hit/miss counters — seeding the cross-PR benchmark
// trajectory; -pr labels the snapshot. -explore additionally measures the
// design-space sweep on the profile circuit (cold sweep vs warm store-served
// sweep vs naive per-period Retime calls); it solves the profile circuit
// many times, so expect it to take a while.
//
// SIGINT/SIGTERM cancel the run context so a Ctrl-C during the suite exits
// with code 4 instead of being killed mid-table.
//
// Exit codes: 0 success, 2 period infeasible, 3 malformed input, 4 resource
// budget, timeout, or interrupt, 1 any other failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"mcretiming/internal/bench"
	"mcretiming/internal/failpoint"
	"mcretiming/internal/rterr"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1, 2 or 3)")
	fig1 := flag.Bool("fig1", false, "print only the Fig. 1 comparison")
	passes := flag.Bool("passes", false, "also print the per-pass retiming runtime breakdown")
	jobs := flag.Int("j", 0, "engine parallelism for the retiming runs (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write a performance snapshot (JSON) here instead of printing tables")
	prLabel := flag.String("pr", "", "label recorded in the -json snapshot")
	exploreFlag := flag.Bool("explore", false, "with -json: also measure the design-space sweep (cold vs warm vs naive; slow)")
	explorePoints := flag.Int("explore-points", 6, "points the -explore sweep solves (0 = every candidate period)")
	enginesFlag := flag.Bool("engines", false, "with -json: also measure sparse vs dense cold solves and the ECO re-prepare path (slow)")
	warmFlag := flag.Bool("warm", false, "with -json: also measure cold vs warm-started vs arrival minperiod on the 50k-vertex profile")
	gateFlag := flag.String("gate", "", "with -json: committed baseline snapshot to gate against (>10% wall regression or <2x warm speedup fails)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcbench [-table 1|2|3] [-fig1] [-passes] [-j N] [-json out.json [-pr label] [-explore]]")
		flag.PrintDefaults()
		fmt.Fprintln(os.Stderr, `
exit codes:
  0  success
  2  period infeasible
  3  malformed input circuit
  4  resource budget, timeout, or interrupt
  1  any other failure`)
	}
	flag.Parse()
	if err := failpoint.ArmFromEnv(); err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *jsonOut != "" {
		counts := []int{1, 2}
		if gm := runtime.GOMAXPROCS(0); gm != 1 && gm != 2 {
			counts = append(counts, gm)
		}
		p, err := bench.MeasurePerfCtx(ctx, counts)
		if err != nil {
			fatal(err)
		}
		p.PR = *prLabel
		if *exploreFlag {
			ep, err := bench.MeasureExploreCtx(ctx, *explorePoints)
			if err != nil {
				fatal(err)
			}
			p.Explore = ep
		}
		if *enginesFlag {
			eng, err := bench.MeasureEnginesCtx(ctx)
			if err != nil {
				fatal(err)
			}
			p.Engines = eng
		}
		if *warmFlag || *gateFlag != "" {
			wp, err := bench.MeasureWarmCtx(ctx)
			if err != nil {
				fatal(err)
			}
			p.Warm = wp
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := p.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if p.SingleCore() {
			// Satellite of the determinism contract: on a 1-core host the
			// speedup columns measure goroutine overhead, not scaling.
			fmt.Fprintf(os.Stderr, "warning: single-core host (GOMAXPROCS=%d, NumCPU=%d): speedup figures are not meaningful here\n",
				p.GoMaxProcs, p.NumCPU)
		}
		diverged := false
		for _, pt := range p.WD {
			fmt.Fprintf(os.Stderr, "wd     j=%-2d %8.2fms  speedup %.2fx  identical=%v\n",
				pt.Workers, float64(pt.WallNS)/1e6, pt.SpeedupVs1, pt.Identical)
			diverged = diverged || !pt.Identical
		}
		for _, pt := range p.Table2 {
			fmt.Fprintf(os.Stderr, "table2 j=%-2d %8.2fms  speedup %.2fx  identical=%v\n",
				pt.Workers, float64(pt.WallNS)/1e6, pt.SpeedupVs1, pt.Identical)
			diverged = diverged || !pt.Identical
		}
		fmt.Fprintf(os.Stderr, "cache  wd %d/%d  base %d/%d (hits/misses)\n",
			p.SolveCache.WDHits, p.SolveCache.WDMisses, p.SolveCache.BaseHits, p.SolveCache.BaseMisses)
		if ep := p.Explore; ep != nil {
			fmt.Fprintf(os.Stderr, "explore cold  %8.2fms  (%d points, cache wd %d/%d base %d/%d)\n",
				float64(ep.ColdNS)/1e6, ep.Points,
				ep.ColdCache.WDHits, ep.ColdCache.WDMisses, ep.ColdCache.BaseHits, ep.ColdCache.BaseMisses)
			fmt.Fprintf(os.Stderr, "explore warm  %8.2fms  speedup %.2fx  store %d/%d  identical=%v\n",
				float64(ep.WarmNS)/1e6, ep.WarmSpeedup, ep.WarmHits, ep.WarmHits+ep.WarmMisses, ep.WarmIdentical)
			fmt.Fprintf(os.Stderr, "explore naive %8.2fms  cold speedup vs naive %.2fx\n",
				float64(ep.NaiveNS)/1e6, ep.NaiveSpeedup)
			diverged = diverged || !ep.WarmIdentical
		}
		if eng := p.Engines; eng != nil {
			fmt.Fprintf(os.Stderr, "engine dense  %8.2fms  sparse %8.2fms  sparse speedup %.2fx  identical=%v  (%d vertices)\n",
				float64(eng.DenseColdNS)/1e6, float64(eng.SparseColdNS)/1e6, eng.SparseSpeedup, eng.Identical, eng.Vertices)
			fmt.Fprintf(os.Stderr, "eco    cold   %8.2fms  apply  %8.2fms  eco speedup %.2fx  identical=%v\n",
				float64(eng.PrepareNS)/1e6, float64(eng.ApplyNS)/1e6, eng.EcoSpeedup, eng.EcoIdentical)
			diverged = diverged || !eng.Identical || !eng.EcoIdentical
		}
		if wp := p.Warm; wp != nil {
			fmt.Fprintf(os.Stderr, "warm   cold   %8.2fms  warm   %8.2fms  arrival %8.2fms  speedup %.2fx  identical=%v  spfa cold starts %d->%d  (%d vertices)\n",
				float64(wp.ColdNS)/1e6, float64(wp.WarmNS)/1e6, float64(wp.ArrivalNS)/1e6,
				wp.Speedup, wp.Identical, wp.SPFAColdStartsCold, wp.SPFAColdStartsWarm, wp.Vertices)
			diverged = diverged || !wp.Identical
		}
		// Timing is advisory, determinism is the contract: a parallel run
		// whose result differs from serial is a hard failure.
		if diverged {
			fatal(fmt.Errorf("parallel result diverged from the serial reference"))
		}
		if *gateFlag != "" {
			base, err := bench.LoadPerf(*gateFlag)
			if err != nil {
				fatal(err)
			}
			violations, skipped := bench.Gate(p, base)
			for _, s := range skipped {
				fmt.Fprintln(os.Stderr, "gate: skipped:", s)
			}
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "gate: FAIL:", v)
			}
			if len(violations) > 0 {
				fatal(fmt.Errorf("bench gate: %d regression(s) vs %s", len(violations), *gateFlag))
			}
			fmt.Fprintln(os.Stderr, "gate: ok")
		}
		return
	}

	if *fig1 {
		r, err := bench.RunFig1Ctx(ctx)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig1(os.Stdout, r)
		return
	}
	rows, err := bench.RunSuiteCtx(ctx, *jobs)
	if err != nil {
		fatal(err)
	}
	switch *table {
	case 1:
		bench.PrintTable1(os.Stdout, rows)
	case 2:
		bench.PrintTable2(os.Stdout, rows)
		bench.PrintJustifyStats(os.Stdout, rows)
		if *passes {
			fmt.Println()
			bench.PrintPassTimes(os.Stdout, rows)
		}
	case 3:
		bench.PrintTable3(os.Stdout, rows)
	case 0:
		bench.PrintTable1(os.Stdout, rows)
		fmt.Println()
		bench.PrintTable2(os.Stdout, rows)
		bench.PrintJustifyStats(os.Stdout, rows)
		if *passes {
			fmt.Println()
			bench.PrintPassTimes(os.Stdout, rows)
		}
		fmt.Println()
		bench.PrintTable3(os.Stdout, rows)
		fmt.Println()
		if r, err := bench.RunFig1Ctx(ctx); err == nil {
			bench.PrintFig1(os.Stdout, r)
		} else {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown table %d", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbench:", err)
	switch {
	case errors.Is(err, rterr.ErrInfeasiblePeriod):
		os.Exit(2)
	case errors.Is(err, rterr.ErrMalformedInput):
		os.Exit(3)
	case errors.Is(err, rterr.ErrBudgetExceeded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		os.Exit(4)
	}
	os.Exit(1)
}
