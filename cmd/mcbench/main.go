// Command mcbench regenerates the paper's experimental tables and figures
// on the synthetic circuit suite.
//
// Usage:
//
//	mcbench [-table 1|2|3] [-fig1] [-passes]
//
// With no flags it runs everything. -passes adds the per-pass runtime
// breakdown of the retiming pipeline under Table 2.
//
// Exit codes: 0 success, 2 period infeasible, 3 malformed input, 4 resource
// budget exceeded, 1 any other failure.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"mcretiming/internal/bench"
	"mcretiming/internal/rterr"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1, 2 or 3)")
	fig1 := flag.Bool("fig1", false, "print only the Fig. 1 comparison")
	passes := flag.Bool("passes", false, "also print the per-pass retiming runtime breakdown")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcbench [-table 1|2|3] [-fig1] [-passes]")
		flag.PrintDefaults()
		fmt.Fprintln(os.Stderr, `
exit codes:
  0  success
  2  period infeasible
  3  malformed input circuit
  4  resource budget exceeded
  1  any other failure`)
	}
	flag.Parse()

	if *fig1 {
		r, err := bench.RunFig1()
		if err != nil {
			fatal(err)
		}
		bench.PrintFig1(os.Stdout, r)
		return
	}
	rows, err := bench.RunSuite()
	if err != nil {
		fatal(err)
	}
	switch *table {
	case 1:
		bench.PrintTable1(os.Stdout, rows)
	case 2:
		bench.PrintTable2(os.Stdout, rows)
		bench.PrintJustifyStats(os.Stdout, rows)
		if *passes {
			fmt.Println()
			bench.PrintPassTimes(os.Stdout, rows)
		}
	case 3:
		bench.PrintTable3(os.Stdout, rows)
	case 0:
		bench.PrintTable1(os.Stdout, rows)
		fmt.Println()
		bench.PrintTable2(os.Stdout, rows)
		bench.PrintJustifyStats(os.Stdout, rows)
		if *passes {
			fmt.Println()
			bench.PrintPassTimes(os.Stdout, rows)
		}
		fmt.Println()
		bench.PrintTable3(os.Stdout, rows)
		fmt.Println()
		if r, err := bench.RunFig1(); err == nil {
			bench.PrintFig1(os.Stdout, r)
		} else {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown table %d", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbench:", err)
	switch {
	case errors.Is(err, rterr.ErrInfeasiblePeriod):
		os.Exit(2)
	case errors.Is(err, rterr.ErrMalformedInput):
		os.Exit(3)
	case errors.Is(err, rterr.ErrBudgetExceeded):
		os.Exit(4)
	}
	os.Exit(1)
}
