// Command mcretime retimes a circuit in the textual netlist format.
//
// Usage:
//
//	mcretime [-minperiod | -period NS] [-o out] [-map] [-verify] [-critical] [-slack N] [-blif] [-trace out.json] [-timeout D] [-j N] [-engine E] in.{mcn,blif}
//
// The default objective is minimum area at the minimum feasible period (the
// paper's "minimal area for best delay"). With -map the input is first
// technology-mapped to 4-input LUTs and the result remapped, mirroring the
// paper's experimental flow.
//
// -trace writes the retiming pipeline's spans and counters as Chrome
// trace-event JSON (open in chrome://tracing or https://ui.perfetto.dev) and
// prints an indented text summary to stderr; the file is written even when
// the run fails, so partial runs can be inspected. -timeout cancels the
// retiming after the given duration (e.g. 30s, 2m).
//
// SIGINT/SIGTERM cancel the run context: a Ctrl-C during a long minarea flow
// aborts the solve cleanly (no partial netlist is written) and exits with
// code 4. The MCRETIMING_FAILPOINTS environment variable arms fault-injection
// sites (internal/failpoint) for chaos testing.
//
// Exit codes: 0 success, 2 target period infeasible, 3 malformed input,
// 4 resource budget, timeout, or interrupt, 1 any other failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mcretiming"
	"mcretiming/internal/failpoint"
)

// exitCode classifies err by the package's error taxonomy so scripts can
// distinguish "your circuit is infeasible" from "your file is broken" from
// "give it more budget" without parsing messages.
func exitCode(err error) int {
	switch {
	case errors.Is(err, mcretiming.ErrInfeasiblePeriod):
		return 2
	case errors.Is(err, mcretiming.ErrMalformedInput):
		return 3
	case errors.Is(err, mcretiming.ErrBudgetExceeded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return 4
	}
	return 1
}

func main() {
	// Any unexpected panic still exits with a clean one-line error: the
	// driver contract is "non-zero status, no stack trace" on bad input.
	defer func() {
		if r := recover(); r != nil {
			fatal(fmt.Errorf("internal error: %v", r))
		}
	}()
	minperiod := flag.Bool("minperiod", false, "minimize the clock period only")
	periodNS := flag.Float64("period", 0, "minimize area at this period (ns) instead of the minimum")
	outFile := flag.String("o", "", "write the retimed netlist here (default: stdout)")
	doMap := flag.Bool("map", false, "map to 4-LUTs before retiming and remap after")
	doVerify := flag.Bool("verify", false, "check sequential equivalence by random simulation")
	doCritical := flag.Bool("critical", false, "print the retimed circuit's critical path")
	slackN := flag.Int("slack", 0, "print the N worst endpoint slacks of the retimed circuit")
	blifOut := flag.Bool("blif", false, "write the result as BLIF instead of the textual netlist format")
	showClasses := flag.Bool("classes", false, "print the register class table")
	traceFile := flag.String("trace", "", "write Chrome trace-event JSON of the retiming pipeline here")
	timeout := flag.Duration("timeout", 0, "abort retiming after this long (e.g. 30s; 0 = no limit)")
	jobs := flag.Int("j", 0, "engine parallelism (0 = GOMAXPROCS, 1 = serial; result is identical either way)")
	engineFlag := flag.String("engine", "auto", "solve engine: auto, sparse (matrix-free), or dense (W/D reference)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcretime [flags] in.{mcn,blif}")
		flag.PrintDefaults()
		fmt.Fprintln(os.Stderr, `
exit codes:
  0  success
  2  target period infeasible
  3  malformed input circuit or file
  4  resource budget, timeout, or interrupt
  1  any other failure`)
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(1)
	}
	if err := failpoint.ArmFromEnv(); err != nil {
		fatal(err)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var c *mcretiming.Circuit
	if strings.HasSuffix(flag.Arg(0), ".blif") {
		c, err = mcretiming.ReadBLIF(f)
	} else {
		c, err = mcretiming.ReadNetlist(f)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}

	work := c
	if *doMap {
		if work, err = mcretiming.MapXC4000(mcretiming.DecomposeSyncResets(c.Clone())); err != nil {
			fatal(err)
		}
	}

	opts := mcretiming.Options{Objective: mcretiming.MinAreaAtMinPeriod, Parallelism: *jobs}
	if opts.Engine, err = mcretiming.ParseEngine(*engineFlag); err != nil {
		fatal(err)
	}
	switch {
	case *minperiod:
		opts.Objective = mcretiming.MinPeriod
	case *periodNS > 0:
		opts.Objective = mcretiming.MinAreaAtPeriod
		opts.TargetPeriod = int64(*periodNS * 1000)
	}

	var rec *mcretiming.TraceRecorder
	if *traceFile != "" {
		rec = mcretiming.NewTraceRecorder()
		opts.Trace = rec
	}
	// SIGINT/SIGTERM cancel the run context so the solve aborts cleanly and
	// the process exits with the documented code instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	out, rep, err := mcretiming.RetimeCtx(ctx, work, opts)
	if rec != nil {
		// Write the trace even on failure — a timed-out run's spans show
		// where the time went.
		if werr := writeTrace(*traceFile, rec); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fatal(fmt.Errorf("timed out after %v: %w", *timeout, err))
		}
		if errors.Is(err, context.Canceled) {
			fatal(fmt.Errorf("interrupted: %w", err))
		}
		fatal(err)
	}
	if *doMap {
		if out, err = mcretiming.MapXC4000(out); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "%s: %d classes, steps %d/%d, period %.1f -> %.1f ns, FF %d -> %d\n",
		c.Name, rep.NumClasses, rep.StepsMoved, rep.StepsPossible,
		float64(rep.PeriodBefore)/1000, float64(rep.PeriodAfter)/1000,
		rep.RegsBefore, rep.RegsAfter)
	if *showClasses {
		for _, ci := range rep.ClassTable {
			fmt.Fprintf(os.Stderr, "  %s\n", ci)
		}
	}
	if rep.JustifyLocal+rep.JustifyGlobal > 0 {
		fmt.Fprintf(os.Stderr, "justifications: %d local, %d global, %d re-retimings\n",
			rep.JustifyLocal, rep.JustifyGlobal, rep.Retries)
	}
	if rec != nil {
		fmt.Fprintf(os.Stderr, "trace: wrote %s; pass summary:\n", *traceFile)
		if err := rec.WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}

	if *doVerify {
		skip := work.NumRegs() + 2
		res, err := mcretiming.Equivalent(work, out, mcretiming.Stimulus{
			Cycles: skip + 64, Seqs: 8, Skip: skip, Seed: 1,
		})
		if err != nil {
			fatal(fmt.Errorf("equivalence check FAILED: %w", err))
		}
		fmt.Fprintf(os.Stderr, "equivalence: ok (%d known samples compared)\n", res.Compared)
	}

	if *doCritical {
		if err := mcretiming.PrintCriticalPath(os.Stderr, out); err != nil {
			fatal(err)
		}
	}
	if *slackN > 0 {
		if err := mcretiming.PrintSlackReport(os.Stderr, out, 0, *slackN); err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *outFile != "" {
		if w, err = os.Create(*outFile); err != nil {
			fatal(err)
		}
		defer w.Close()
	}
	write := mcretiming.WriteNetlist
	if *blifOut {
		write = mcretiming.WriteBLIF
	}
	if err := write(w, out); err != nil {
		fatal(err)
	}
}

// writeTrace dumps the recorder as Chrome trace-event JSON.
func writeTrace(path string, rec *mcretiming.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcretime:", err)
	os.Exit(exitCode(err))
}
