package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"mcretiming/internal/blif"
	"mcretiming/internal/netlist"
)

// TestInterruptExitsWithCode4 proves the CLI's signal contract end to end:
// a run pinned mid-solve by a failpoint sleep receives SIGINT, cancels the
// run context, and exits promptly with the documented code 4 — it is not
// killed mid-write by the default signal disposition.
func TestInterruptExitsWithCode4(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signals")
	}
	if testing.Short() {
		t.Skip("builds the binary")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "mcretime")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	in := filepath.Join(dir, "in.blif")
	if err := os.WriteFile(in, []byte(signalTestBLIF(t)), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-o", filepath.Join(dir, "out.mcn"), in)
	cmd.Env = append(os.Environ(), "MCRETIMING_FAILPOINTS=graph.minperiod=sleep(30s)")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	start := time.Now()
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the process arm its handler and reach the failpoint sleep.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	err := cmd.Wait()
	elapsed := time.Since(start)
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("wait: %v (stderr: %s)", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 4 {
		t.Fatalf("exit code = %d, want 4 (stderr: %s)", code, stderr.String())
	}
	// Prompt exit: the 30s failpoint sleep must be cut short by cancellation.
	if elapsed > 10*time.Second {
		t.Fatalf("took %v to exit after SIGINT", elapsed)
	}
	// A cancelled run must not leave a partial netlist behind.
	if _, err := os.Stat(filepath.Join(dir, "out.mcn")); !os.IsNotExist(err) {
		t.Errorf("interrupted run wrote an output file (stat err: %v)", err)
	}
}

// signalTestBLIF renders the quickstart circuit as BLIF.
func signalTestBLIF(t *testing.T) string {
	t.Helper()
	c := netlist.New("quickstart")
	a := c.AddInput("a")
	b := c.AddInput("b")
	en := c.AddInput("en")
	clk := c.AddInput("clk")
	r1, q1 := c.AddReg("r1", a, clk)
	r2, q2 := c.AddReg("r2", b, clk)
	c.Regs[r1].EN = en
	c.Regs[r2].EN = en
	_, x := c.AddGate("g1", netlist.And, []netlist.SignalID{q1, q2}, 1_000)
	_, y := c.AddGate("g2", netlist.Xor, []netlist.SignalID{x, a}, 4_000)
	_, z := c.AddGate("g3", netlist.Nor, []netlist.SignalID{y, b}, 4_000)
	c.MarkOutput(z)
	var buf bytes.Buffer
	if err := blif.Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
