// Command mcexplore computes the Pareto front of feasible clock period vs.
// register count for a circuit: a design-space sweep over the candidate
// periods (the distinct D-matrix entries), each solved for minimum
// shared-register area.
//
// Usage:
//
//	mcexplore [-o front.json] [-csv front.csv] [-store DIR] [-points N]
//	          [-map] [-j N] [-timeout D] in.{mcn,blif}
//
// The front is written as stable mcretiming-front/v1 JSON to stdout (or -o)
// and optionally as CSV for plotting. Its first point is bit-identical to
// the single-point `mcretime` (minimum area at minimum period) result, and
// the output is deterministic at any -j.
//
// -store points at a persistent content-addressed result store (default:
// the MCRETIMING_STORE environment variable; empty disables persistence).
// Solved points are keyed by circuit content + solver options, so repeated
// sweeps — across runs and processes — load from disk instead of re-solving.
// A corrupted store entry is silently re-solved, never served.
//
// A "store:" summary line on stderr reports points served from the store vs
// solved fresh, e.g. `store: 12/13 points from store (dir /x, 1 solved)`.
//
// SIGINT/SIGTERM cancel the sweep cleanly. Exit codes: 0 success, 2
// infeasible, 3 malformed input, 4 budget/timeout/interrupt, 1 other.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mcretiming"
	"mcretiming/internal/failpoint"
)

func exitCode(err error) int {
	switch {
	case errors.Is(err, mcretiming.ErrInfeasiblePeriod):
		return 2
	case errors.Is(err, mcretiming.ErrMalformedInput):
		return 3
	case errors.Is(err, mcretiming.ErrBudgetExceeded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return 4
	}
	return 1
}

func main() {
	defer func() {
		if r := recover(); r != nil {
			fatal(fmt.Errorf("internal error: %v", r))
		}
	}()
	outFile := flag.String("o", "", "write the front JSON here (default: stdout)")
	csvFile := flag.String("csv", "", "also write the front as CSV here")
	storeDir := flag.String("store", os.Getenv("MCRETIMING_STORE"),
		"persistent result store directory (default: $MCRETIMING_STORE; empty = no persistence)")
	points := flag.Int("points", 0, "cap the number of solved points (0 = all candidate periods)")
	doMap := flag.Bool("map", false, "map to 4-LUTs before sweeping")
	jobs := flag.Int("j", 0, "sweep parallelism: periods solved concurrently (0 = GOMAXPROCS; front is identical at any setting)")
	engineFlag := flag.String("engine", "auto", "solve engine: auto, sparse (matrix-free), or dense (W/D reference; own store keyspace)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this long (e.g. 2m; 0 = no limit)")
	quiet := flag.Bool("q", false, "suppress the per-point progress on stderr")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcexplore [flags] in.{mcn,blif}")
		flag.PrintDefaults()
		fmt.Fprintln(os.Stderr, `
exit codes:
  0  success
  2  infeasible
  3  malformed input circuit or file
  4  resource budget, timeout, or interrupt
  1  any other failure`)
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(1)
	}
	if err := failpoint.ArmFromEnv(); err != nil {
		fatal(err)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var c *mcretiming.Circuit
	if strings.HasSuffix(flag.Arg(0), ".blif") {
		c, err = mcretiming.ReadBLIF(f)
	} else {
		c, err = mcretiming.ReadNetlist(f)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *doMap {
		if c, err = mcretiming.MapXC4000(mcretiming.DecomposeSyncResets(c.Clone())); err != nil {
			fatal(err)
		}
	}

	opts := mcretiming.ExploreOptions{Parallelism: *jobs, MaxPoints: *points}
	if opts.Core.Engine, err = mcretiming.ParseEngine(*engineFlag); err != nil {
		fatal(err)
	}
	if *storeDir != "" {
		if opts.Store, err = mcretiming.OpenStore(*storeDir); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rexplore: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	front, err := mcretiming.Explore(ctx, c, opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fatal(fmt.Errorf("timed out after %v: %w", *timeout, err))
		}
		if errors.Is(err, context.Canceled) {
			fatal(fmt.Errorf("interrupted: %w", err))
		}
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "%s: %d Pareto points (%d swept, %d dominated), period %.1f..%.1f ns, regs %d..%d, %v\n",
		front.Circuit, len(front.Points), front.CandidatesSwept, front.Dominated,
		float64(front.MinPeriodPS)/1000,
		float64(front.Points[len(front.Points)-1].PeriodPS)/1000,
		front.Points[0].Regs, front.Points[len(front.Points)-1].Regs,
		front.Wall.Round(1e6))
	if opts.Store != nil {
		// The CI smoke job parses this line: keep its shape stable.
		fmt.Fprintf(os.Stderr, "store: %d/%d points from store (dir %s, %d solved)\n",
			front.StoreHits, front.StoreHits+front.StoreMisses, opts.Store.Dir(), front.StoreMisses)
	}

	w := os.Stdout
	if *outFile != "" {
		if w, err = os.Create(*outFile); err != nil {
			fatal(err)
		}
		defer w.Close()
	}
	if err := front.WriteJSON(w); err != nil {
		fatal(err)
	}
	if *csvFile != "" {
		cf, err := os.Create(*csvFile)
		if err != nil {
			fatal(err)
		}
		if err := front.WriteCSV(cf); err != nil {
			cf.Close()
			fatal(err)
		}
		if err := cf.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcexplore:", err)
	os.Exit(exitCode(err))
}
