// Command mcretimed is the long-running retiming service: an HTTP JSON API
// over the mc-retiming engine with admission control, per-job deadlines,
// panic isolation, budget-relaxing retries, and graceful shutdown with
// checkpoint/resume (see internal/server).
//
// Usage:
//
//	mcretimed [-addr :8472] [-queue 64] [-workers 2] [-deadline 60s]
//	          [-checkpoint DIR] [-store DIR] [-retries 2] [-failpoints]
//	          [-coordinator] [-join URL -advertise URL] [-remote-store URL]
//	          [-peer URL] [-election-timeout 18s] [-tenants FILE]
//
// A single daemon serves jobs by itself. With -coordinator it additionally
// dispatches jobs to joined workers (degrading to local execution when none
// is healthy); with -join/-advertise it runs as a worker of that
// coordinator. Two coordinators started with -peer pointing at each other
// form a highly-available pair: one leads, the other replicates its jobs and
// store writes and takes over when the leader provably dies. See README
// "Cluster" and "Cluster HA".
//
// API:
//
//	POST /v1/retime        submit a job: {"blif": "...", "options": {...}}
//	                       ?wait=1 blocks until the job finishes
//	POST /v1/explore       submit a design-space sweep (same envelope);
//	                       the result carries the mcretiming-front/v1 Pareto
//	                       front, and GET /v1/jobs/{id} reports per-point
//	                       progress while it runs
//	POST /v1/batch         submit N jobs as one batch: {"jobs":[{...}, ...]}
//	GET  /v1/batch/{id}    aggregate batch status + member views
//	GET  /v1/batch/{id}/events  stream per-job progress (NDJSON, or SSE with
//	                       Accept: text/event-stream); ?after=N replays
//	GET  /v1/jobs          list jobs (?status=queued|running|done|failed,
//	                       ?tenant=, paginated with ?limit= and ?cursor=)
//	GET  /v1/jobs/{id}     job status/result; failed jobs answer with their
//	                       mapped HTTP status (see README "Serving")
//	GET  /v1/cluster/autoscale  scaling signals: per-tenant queue depth and
//	                       wait age, per-worker serving counts
//
// Submissions may carry an X-MCRetiming-Tenant header (default tenant when
// absent); -tenants names a JSON file of per-tenant weights and admission
// quotas, hot-reloaded on SIGHUP. An Idempotency-Key header on POST
// /v1/retime and /v1/batch makes retries safe: the same key with the same
// body replays the original admission.
//
// Other endpoints:
//
//	POST /v1/cluster/run   execute one forwarded run (cluster data plane)
//	POST /v1/cluster/join  register a worker        (coordinator only)
//	POST /v1/cluster/heartbeat  renew a worker lease (coordinator only)
//	GET  /v1/cluster/workers    membership + liveness (coordinator only)
//	GET  /v1/cluster/leader     HA role/term/leader hint (coordinator only)
//	POST /v1/cluster/campaign   force a lease campaign — manual failover
//	POST /v1/cluster/replicate/jobs   leader→standby job snapshot (HA pair)
//	POST /v1/cluster/replicate/store  leader→standby store write  (HA pair)
//	GET  /v1/store/{key}   serve a result-store envelope (coordinator only)
//	PUT  /v1/store/{key}   accept a validated envelope   (coordinator only)
//	GET  /healthz          process liveness
//	GET  /readyz           503 while starting up or draining
//	GET  /metrics          plaintext counters
//
// SIGINT/SIGTERM triggers graceful shutdown: in-flight jobs finish, queued
// jobs checkpoint to -checkpoint (when set) and are resumed by the next
// start. The MCRETIMING_FAILPOINTS environment variable arms process-wide
// fault-injection sites (internal/failpoint); the -failpoints flag
// additionally accepts per-job "failpoints" specs over the API for chaos
// testing.
package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcretiming/internal/failpoint"
	"mcretiming/internal/server"

	"flag"
)

func main() {
	addr := flag.String("addr", ":8472", "listen address")
	queue := flag.Int("queue", 64, "bounded job-queue size (admission control)")
	workers := flag.Int("workers", 2, "concurrent job executors")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-job deadline (negative = none)")
	checkpoint := flag.String("checkpoint", "", "directory for queued-job checkpoints on shutdown (empty = disabled)")
	storeDir := flag.String("store", os.Getenv("MCRETIMING_STORE"),
		"persistent result store for exploration jobs (default: $MCRETIMING_STORE; empty = disabled)")
	retries := flag.Int("retries", 2, "budget-relaxing retries per job on ErrBudgetExceeded")
	allowFP := flag.Bool("failpoints", false, "accept per-job failpoint specs over the API (chaos testing only)")
	drainTimeout := flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight jobs")
	coordinator := flag.Bool("coordinator", false, "enable the cluster control plane and dispatch jobs to joined workers")
	joinURL := flag.String("join", "", "run as a worker of the coordinator at this base URL")
	advertise := flag.String("advertise", "", "base URL the coordinator dials this worker back on (required with -join)")
	workerID := flag.String("worker-id", "", "stable cluster identity (default: the advertise URL)")
	lease := flag.Duration("lease", 6*time.Second, "coordinator heartbeat lease TTL")
	heartbeat := flag.Duration("heartbeat", 0, "worker heartbeat interval (default: lease/3)")
	remoteStore := flag.String("remote-store", "", "remote result-store base URL (layered behind -store; diskless without it)")
	peer := flag.String("peer", "", "base URL of the paired HA coordinator (requires -coordinator and -advertise)")
	electionTimeout := flag.Duration("election-timeout", 0,
		"how long a standby tolerates lease silence before probing the peer (default: 3×lease)")
	tenantsFile := flag.String("tenants", "",
		"JSON file of per-tenant scheduling weights and admission quotas (hot-reloaded on SIGHUP)")
	flag.Parse()

	if *joinURL != "" && *advertise == "" {
		fatal(errors.New("-join requires -advertise (the coordinator must dial back)"))
	}
	if *joinURL != "" && *coordinator {
		fatal(errors.New("-coordinator and -join are mutually exclusive"))
	}
	if *peer != "" && !*coordinator {
		fatal(errors.New("-peer requires -coordinator (only coordinators form an HA pair)"))
	}
	if *peer != "" && *advertise == "" {
		fatal(errors.New("-peer requires -advertise (the peer and workers must dial back)"))
	}

	if err := failpoint.ArmFromEnv(); err != nil {
		fatal(err)
	}
	if *checkpoint != "" {
		if err := os.MkdirAll(*checkpoint, 0o755); err != nil {
			fatal(err)
		}
	}

	srv := server.New(server.Config{
		QueueSize:         *queue,
		Workers:           *workers,
		DefaultTimeout:    *deadline,
		CheckpointDir:     *checkpoint,
		StoreDir:          *storeDir,
		RetryMax:          *retries,
		EnableFailpoints:  *allowFP,
		Coordinator:       *coordinator,
		JoinURL:           *joinURL,
		AdvertiseURL:      *advertise,
		WorkerID:          *workerID,
		LeaseTTL:          *lease,
		HeartbeatInterval: *heartbeat,
		RemoteStoreURL:    *remoteStore,
		PeerURL:           *peer,
		ElectionTimeout:   *electionTimeout,
		TenantsFile:       *tenantsFile,
	})
	if err := srv.Start(); err != nil {
		fatal(err)
	}

	// SIGHUP re-reads -tenants without a restart; a malformed file logs and
	// leaves the running table untouched.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.ReloadTenants(); err != nil {
				fmt.Fprintln(os.Stderr, "mcretimed: tenant reload:", err)
			}
		}
	}()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	role := "single-node"
	switch {
	case *peer != "":
		role = "HA coordinator paired with " + *peer
	case *coordinator:
		role = "coordinator"
	case *joinURL != "":
		role = "worker of " + *joinURL
	}
	fmt.Fprintf(os.Stderr, "mcretimed: listening on %s (%s)\n", *addr, role)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mcretimed: draining...")

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "mcretimed: http shutdown:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "mcretimed: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcretimed:", err)
	os.Exit(1)
}
