// Command mcgen materializes the synthetic benchmark suite (the paper's
// C1-C10 stand-ins) as netlist files, optionally after the mapping flow.
//
// Usage:
//
//	mcgen [-dir out] [-format mcn|blif|v] [-mapped] [-c N]
//	mcgen -scale pipeline|dag [-n GATES] [-width W] [-seed S] [-mix P,E,S,A] [-dir out] [-format F]
//
// With -scale, instead of the C1-C10 suite a single scale-family circuit is
// generated: "pipeline" is width parallel bit chains with alternating-depth
// stages (mostly fanout-1, sized by -n up to 10⁵+ gates), "dag" a random
// reconvergent DAG. -mix weights the register classes
// plain,enable,sync-reset,async-reset (default "1,1,0,0" — justification-
// trivial, the profile the scale smoke runs use).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mcretiming"
	"mcretiming/internal/gen"
	"mcretiming/internal/netlist"
)

// parseMix parses a "plain,en,sr,ar" weight list.
func parseMix(s string) (gen.ClassMix, error) {
	var m gen.ClassMix
	fields := strings.Split(s, ",")
	if len(fields) != 4 {
		return m, fmt.Errorf("mix %q: want four comma-separated weights (plain,en,sr,ar)", s)
	}
	for i, f := range fields {
		var w int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &w); err != nil || w < 0 {
			return m, fmt.Errorf("mix %q: bad weight %q", s, f)
		}
		switch i {
		case 0:
			m.Plain = w
		case 1:
			m.EN = w
		case 2:
			m.SR = w
		case 3:
			m.AR = w
		}
	}
	return m, nil
}

func main() {
	dir := flag.String("dir", ".", "output directory")
	format := flag.String("format", "mcn", "output format: mcn, blif or v (Verilog)")
	mapped := flag.Bool("mapped", false, "run the Table-1 flow (decompose sync resets + 4-LUT map) first")
	only := flag.Int("c", 0, "generate only circuit N (1-10); 0 = all")
	scale := flag.String("scale", "", `generate one scale-family circuit instead of the suite: "pipeline" or "dag"`)
	nGates := flag.Int("n", 50000, "with -scale: approximate gate count")
	width := flag.Int("width", 64, "with -scale pipeline: bus width (bit chains)")
	seed := flag.Int64("seed", 1, "with -scale: generator seed")
	mixFlag := flag.String("mix", "1,1,0,0", "with -scale: register class weights plain,en,sr,ar")
	flag.Parse()

	ext := map[string]string{"mcn": ".mcn", "blif": ".blif", "v": ".v"}[*format]
	if ext == "" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	if *scale != "" {
		mix, err := parseMix(*mixFlag)
		if err != nil {
			fatal(err)
		}
		var c *netlist.Circuit
		switch *scale {
		case "pipeline":
			// Stage gate cost ≈ width × 2 (alternating depth 1 and 3).
			stages := max(1, *nGates / *width / 2)
			c, err = gen.ScalePipeline(*seed, *width, stages, mix)
		case "dag":
			c, err = gen.ScaleDAG(*seed, *nGates, mix)
		default:
			err = fmt.Errorf("unknown scale family %q (want pipeline or dag)", *scale)
		}
		if err != nil {
			fatal(err)
		}
		if err := writeCircuit(filepath.Join(*dir, c.Name+ext), *format, c); err != nil {
			fatal(err)
		}
		return
	}
	for i, p := range gen.Profiles {
		if *only != 0 && i+1 != *only {
			continue
		}
		c, err := p.Build()
		if err != nil {
			fatal(err)
		}
		if *mapped {
			var err error
			if c, err = mcretiming.MapXC4000(mcretiming.DecomposeSyncResets(c)); err != nil {
				fatal(fmt.Errorf("%s: %w", p.Name, err))
			}
		}
		if err := writeCircuit(filepath.Join(*dir, p.Name+ext), *format, c); err != nil {
			fatal(err)
		}
	}
}

// writeCircuit serializes c to path in the chosen format and prints the
// one-line summary.
func writeCircuit(path, format string, c *netlist.Circuit) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "mcn":
		err = mcretiming.WriteNetlist(f, c)
	case "blif":
		err = mcretiming.WriteBLIF(f, c)
	case "v":
		err = mcretiming.WriteVerilog(f, c)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: %d gates, %d registers\n", path, c.NumGates(), c.NumRegs())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcgen:", err)
	os.Exit(1)
}
