// Command mcgen materializes the synthetic benchmark suite (the paper's
// C1-C10 stand-ins) as netlist files, optionally after the mapping flow.
//
// Usage:
//
//	mcgen [-dir out] [-format mcn|blif|v] [-mapped] [-c N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mcretiming"
	"mcretiming/internal/gen"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	format := flag.String("format", "mcn", "output format: mcn, blif or v (Verilog)")
	mapped := flag.Bool("mapped", false, "run the Table-1 flow (decompose sync resets + 4-LUT map) first")
	only := flag.Int("c", 0, "generate only circuit N (1-10); 0 = all")
	flag.Parse()

	ext := map[string]string{"mcn": ".mcn", "blif": ".blif", "v": ".v"}[*format]
	if ext == "" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for i, p := range gen.Profiles {
		if *only != 0 && i+1 != *only {
			continue
		}
		c, err := p.Build()
		if err != nil {
			fatal(err)
		}
		if *mapped {
			var err error
			if c, err = mcretiming.MapXC4000(mcretiming.DecomposeSyncResets(c)); err != nil {
				fatal(fmt.Errorf("%s: %w", p.Name, err))
			}
		}
		path := filepath.Join(*dir, p.Name+ext)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "mcn":
			err = mcretiming.WriteNetlist(f, c)
		case "blif":
			err = mcretiming.WriteBLIF(f, c)
		case "v":
			err = mcretiming.WriteVerilog(f, c)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Printf("%s: %d gates, %d registers\n", path, c.NumGates(), c.NumRegs())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcgen:", err)
	os.Exit(1)
}
