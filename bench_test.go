// Benchmarks regenerating the paper's experiments. One benchmark per table
// and figure (the printable rows come from cmd/mcbench; these measure the
// pipelines and report the headline ratios as metrics), plus ablations for
// the design decisions called out in DESIGN.md.
package mcretiming

import (
	"context"
	"fmt"
	"testing"

	"mcretiming/internal/bench"
	"mcretiming/internal/core"
	"mcretiming/internal/gen"
	"mcretiming/internal/mcgraph"
	"mcretiming/internal/netlist"
	"mcretiming/internal/xc4000"
)

// mapBaseline runs the Table 1 flow for one generated circuit.
func mapBaseline(b *testing.B, c *netlist.Circuit) *netlist.Circuit {
	b.Helper()
	mapped, err := xc4000.Map(xc4000.DecomposeSyncResets(c.Clone()))
	if err != nil {
		b.Fatal(err)
	}
	return mapped
}

// genCircuit builds benchmark circuit i, failing the benchmark on error.
func genCircuit(tb testing.TB, i int) *netlist.Circuit {
	tb.Helper()
	c, err := gen.Circuit(i)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// BenchmarkTable1Baseline measures the baseline characterization flow
// (decompose sync set/clear + map + timing) per circuit.
func BenchmarkTable1Baseline(b *testing.B) {
	for _, p := range gen.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			c, err := p.Build()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				mapped := mapBaseline(b, c)
				st, err := xc4000.Report(mapped)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.FFs), "FF")
				b.ReportMetric(float64(st.LUTs+st.Carry), "LUT")
				b.ReportMetric(float64(st.Delay)/1000, "delay-ns")
			}
		})
	}
}

// BenchmarkComputeWD measures the W/D matrix computation on a ≥2000-vertex
// random profile at engine parallelism 1 and 8. The two variants produce
// bit-identical matrices; the wall-time gap is the row-sharding speedup,
// which tracks the cores actually available (GOMAXPROCS).
func BenchmarkComputeWD(b *testing.B) {
	m, err := mcgraph.Build(gen.Random(1, 2600))
	if err != nil {
		b.Fatal(err)
	}
	g := m.ToGraph()
	if n := g.NumVertices(); n < 2000 {
		b.Fatalf("profile has %d vertices, want >= 2000", n)
	}
	for _, j := range []int{1, 8} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			ctx := context.Background()
			b.ReportMetric(float64(g.NumVertices()), "vertices")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.ComputeWDPar(ctx, j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2MCRetime measures multiple-class retiming (minarea at best
// delay) + remap per circuit, reporting the paper's ratio columns. The j1/j8
// variants run the identical flow at engine parallelism 1 and 8 — same
// retiming bit for bit, different wall time on multicore hosts.
func BenchmarkTable2MCRetime(b *testing.B) {
	for _, p := range gen.Profiles {
		for _, j := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/j%d", p.Name, j), func(b *testing.B) {
				c, err := p.Build()
				if err != nil {
					b.Fatal(err)
				}
				mapped := mapBaseline(b, c)
				before, err := xc4000.Report(mapped)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					retimed, rep, err := core.Retime(mapped, core.Options{Objective: core.MinAreaAtMinPeriod, Parallelism: j})
					if err != nil {
						b.Fatal(err)
					}
					remapped, err := xc4000.Map(retimed)
					if err != nil {
						b.Fatal(err)
					}
					after, err := xc4000.Report(remapped)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(rep.NumClasses), "classes")
					b.ReportMetric(float64(rep.StepsMoved), "steps-moved")
					b.ReportMetric(float64(after.LUTs+after.Carry)/float64(before.LUTs+before.Carry), "Rlut")
					b.ReportMetric(float64(after.Delay)/float64(before.Delay), "Rdelay")
				}
			})
		}
	}
}

// BenchmarkTable3NoEnable measures the conventional baseline: decompose the
// load enables first, then retime and remap.
func BenchmarkTable3NoEnable(b *testing.B) {
	for _, p := range gen.Profiles {
		b.Run(p.Name, func(b *testing.B) {
			c, err := p.Build()
			if err != nil {
				b.Fatal(err)
			}
			mapped := mapBaseline(b, c)
			before, err := xc4000.Report(mapped)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				noen, err := xc4000.Map(xc4000.DecomposeEnables(xc4000.DecomposeSyncResets(c.Clone())))
				if err != nil {
					b.Fatal(err)
				}
				retimed, _, err := core.Retime(noen, core.Options{Objective: core.MinAreaAtMinPeriod})
				if err != nil {
					b.Fatal(err)
				}
				remapped, err := xc4000.Map(retimed)
				if err != nil {
					b.Fatal(err)
				}
				after, err := xc4000.Report(remapped)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(after.LUTs+after.Carry)/float64(before.LUTs+before.Carry), "Rlut1")
				b.ReportMetric(float64(after.Delay)/float64(before.Delay), "Rdelay1")
			}
		})
	}
}

// BenchmarkFig1LoadEnable measures both Fig. 1 flows on the two-register
// enable circuit and reports the area gap.
func BenchmarkFig1LoadEnable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.MCFF), "mc-FF")
		b.ReportMetric(float64(r.BaseFF), "decomposed-FF")
		b.ReportMetric(float64(r.BaseLUT-r.MCLUT), "extra-LUTs")
	}
}

// BenchmarkAblationSharing compares minarea results with and without the
// §4.2 separation-vertex transform: the naive cost model may undercount and
// produce worse real register counts.
func BenchmarkAblationSharing(b *testing.B) {
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"separation", false}, {"naive", true}} {
		b.Run(variant.name, func(b *testing.B) {
			c := genCircuit(b, 7) // many classes: sharing conflicts abound
			mapped := mapBaseline(b, c)
			for i := 0; i < b.N; i++ {
				out, _, err := core.Retime(mapped, core.Options{
					Objective:      core.MinAreaAtMinPeriod,
					DisableSharing: variant.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(out.NumRegs()), "FF-after")
			}
		})
	}
}

// BenchmarkAblationJustify measures the cost of reset-state computation by
// comparing full justification against the naive hooks (X reset values) on
// an async-reset-heavy circuit.
func BenchmarkAblationJustify(b *testing.B) {
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"bdd-justify", false}, {"naive", true}} {
		b.Run(variant.name, func(b *testing.B) {
			c := genCircuit(b, 6)
			mapped := mapBaseline(b, c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Retime(mapped, core.Options{
					Objective:      core.MinAreaAtMinPeriod,
					DisableJustify: variant.disable,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJustifyEngine compares the paper's BDD justification
// against the SAT backend on the conflict-heavy register-dominated circuit.
func BenchmarkAblationJustifyEngine(b *testing.B) {
	for _, variant := range []struct {
		name string
		sat  bool
	}{{"bdd", false}, {"sat", true}} {
		b.Run(variant.name, func(b *testing.B) {
			c := genCircuit(b, 6)
			mapped := mapBaseline(b, c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Retime(mapped, core.Options{
					Objective:  core.MinAreaAtMinPeriod,
					SATJustify: variant.sat,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLazyVsDense compares the lazy cutting-plane period
// constraints against the dense W/D formulation on a mapped circuit — the
// implementation choice that makes the suite tractable.
func BenchmarkAblationLazyVsDense(b *testing.B) {
	c := genCircuit(b, 1)
	mapped := mapBaseline(b, c)
	m, err := mcgraph.Build(mapped)
	if err != nil {
		b.Fatal(err)
	}
	info := m.ComputeBounds()
	g, bounds := m.AreaGraph(info)

	b.Run("dense-WD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := g.MinPeriod(nil, bounds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy-cuts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := g.MinPeriodLazy(bounds, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBoundsComputation measures step 2 (maximal backward/forward
// retiming) alone — the paper reports it as a few percent of total runtime.
func BenchmarkBoundsComputation(b *testing.B) {
	c := genCircuit(b, 6) // register-dominated: worst case for bounds
	mapped := mapBaseline(b, c)
	m, err := mcgraph.Build(mapped)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ComputeBounds()
	}
}
