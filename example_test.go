package mcretiming_test

import (
	"fmt"

	"mcretiming"
)

// ExampleRetime retimes the paper's Fig. 1 circuit: two load-enable
// registers move forward across the AND gate as one compatible layer and
// merge into a single register.
func ExampleRetime() {
	c := mcretiming.NewCircuit("fig1")
	i1 := c.AddInput("i1")
	i2 := c.AddInput("i2")
	en := c.AddInput("en")
	clk := c.AddInput("clk")
	r1, q1 := c.AddReg("r1", i1, clk)
	r2, q2 := c.AddReg("r2", i2, clk)
	c.Regs[r1].EN = en
	c.Regs[r2].EN = en
	_, g := c.AddGate("g", mcretiming.And, []mcretiming.SignalID{q1, q2}, 1000)
	_, h := c.AddGate("h", mcretiming.Not, []mcretiming.SignalID{g}, 9000)
	c.MarkOutput(h)

	out, rep, err := mcretiming.Retime(c, mcretiming.Options{
		Objective: mcretiming.MinAreaAtMinPeriod,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("classes=%d registers=%d->%d period=%dps->%dps\n",
		rep.NumClasses, rep.RegsBefore, rep.RegsAfter,
		rep.PeriodBefore, rep.PeriodAfter)
	_ = out
	// Output: classes=1 registers=2->1 period=10000ps->9000ps
}

// ExampleProveEquivalent shows the SAT-backed bounded equivalence proof.
func ExampleProveEquivalent() {
	build := func() *mcretiming.Circuit {
		c := mcretiming.NewCircuit("m")
		a := c.AddInput("a")
		clk := c.AddInput("clk")
		_, x := c.AddGate("g", mcretiming.Not, []mcretiming.SignalID{a}, 1000)
		_, q := c.AddReg("r", x, clk)
		c.MarkOutput(q)
		return c
	}
	res, err := mcretiming.ProveEquivalent(build(), build(), mcretiming.BMCOptions{Depth: 8})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("equivalent:", res.Equivalent)
	// Output: equivalent: true
}

// ExampleRunFlow runs the paper's full experimental script on a circuit.
func ExampleRunFlow() {
	c := mcretiming.NewCircuit("flow")
	a := c.AddInput("a")
	en := c.AddInput("en")
	clk := c.AddInput("clk")
	r, q := c.AddReg("r", a, clk)
	c.Regs[r].EN = en
	// Three 4-input XOR stages, every side input registered with the same
	// enable: the whole register layer can move into the cone, and each
	// stage needs its own LUT, so the mapped circuit is three levels deep
	// with all the registers at its boundary.
	sig := q
	for i := 0; i < 3; i++ {
		in := []mcretiming.SignalID{sig}
		for j := 0; j < 3; j++ {
			x := c.AddInput(fmt.Sprintf("x%d_%d", i, j))
			rx, qx := c.AddReg("", x, clk)
			c.Regs[rx].EN = en
			in = append(in, qx)
		}
		_, sig = c.AddGate("", mcretiming.Xor, in, 3500)
	}
	c.MarkOutput(sig)

	res, err := mcretiming.RunFlow(c, mcretiming.FlowOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delay improved: %v\n", res.After.Delay < res.Before.Delay)
	// Output: delay improved: true
}
