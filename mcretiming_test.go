package mcretiming_test

import (
	"bytes"
	"testing"

	"mcretiming"
)

// The public façade: build, retime, verify, serialize — the full user
// workflow through exported API only.
func TestPublicAPIWorkflow(t *testing.T) {
	c := mcretiming.NewCircuit("api")
	a := c.AddInput("a")
	b := c.AddInput("b")
	en := c.AddInput("en")
	clk := c.AddInput("clk")
	r1, q1 := c.AddReg("r1", a, clk)
	r2, q2 := c.AddReg("r2", b, clk)
	c.Regs[r1].EN = en
	c.Regs[r2].EN = en
	_, x := c.AddGate("g1", mcretiming.And, []mcretiming.SignalID{q1, q2}, 1000)
	_, y := c.AddGate("g2", mcretiming.Xor, []mcretiming.SignalID{x, a}, 8000)
	c.MarkOutput(y)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	out, rep, err := mcretiming.Retime(c, mcretiming.Options{
		Objective: mcretiming.MinAreaAtMinPeriod,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeriodAfter >= rep.PeriodBefore {
		t.Errorf("period %d -> %d, want improvement", rep.PeriodBefore, rep.PeriodAfter)
	}
	if out.NumRegs() != 1 {
		t.Errorf("registers = %d, want 1 (forward-shared enable layer)", out.NumRegs())
	}

	res, err := mcretiming.Equivalent(c, out, mcretiming.Stimulus{
		Cycles: 48, Seqs: 6, Skip: 4, Seed: 1, Bias: map[string]float64{"en": 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compared == 0 {
		t.Error("equivalence compared nothing")
	}

	var buf bytes.Buffer
	if err := mcretiming.WriteNetlist(&buf, out); err != nil {
		t.Fatal(err)
	}
	back, err := mcretiming.ReadNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRegs() != out.NumRegs() {
		t.Error("serialization round trip changed register count")
	}
}

func TestPublicMapAndDecompose(t *testing.T) {
	c := mcretiming.NewCircuit("mapapi")
	a := c.AddInput("a")
	en := c.AddInput("en")
	rst := c.AddInput("rst")
	clk := c.AddInput("clk")
	_, x := c.AddGate("g", mcretiming.Not, []mcretiming.SignalID{a}, 1000)
	r, q := c.AddReg("r", x, clk)
	c.Regs[r].EN = en
	c.Regs[r].SR = rst
	c.Regs[r].SRVal = mcretiming.B0
	c.MarkOutput(q)

	work := mcretiming.DecomposeSyncResets(c.Clone())
	work = mcretiming.DecomposeEnables(work)
	mapped, err := mcretiming.MapXC4000(work)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mcretiming.ReportFPGA(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if st.FFs != 1 {
		t.Errorf("FFs = %d, want 1", st.FFs)
	}
	mapped.LiveRegs(func(r *mcretiming.Reg) {
		if r.HasEN() || r.HasSR() {
			t.Error("decomposition left control pins")
		}
	})
}
