// Fpgaflow runs the paper's full experimental flow on one generated
// benchmark circuit: decompose synchronous set/clears (the XC4000E flip-flop
// has none), map to 4-input LUTs, retime the mapped netlist for minimum
// area at best delay, remap the combinational logic, and print the
// before/after table row. Optionally writes both netlists to files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mcretiming"
	"mcretiming/internal/gen"
)

func main() {
	idx := flag.Int("c", 1, "benchmark circuit index (1-10)")
	outFile := flag.String("o", "", "write the retimed netlist to this file")
	flag.Parse()
	if *idx < 1 || *idx > 10 {
		log.Fatalf("circuit index %d out of range 1-10", *idx)
	}

	rtl, err := gen.Circuit(*idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d gates, %d registers (RT level)\n",
		rtl.Name, rtl.NumGates(), rtl.NumRegs())

	mapped, err := mcretiming.MapXC4000(mcretiming.DecomposeSyncResets(rtl.Clone()))
	if err != nil {
		log.Fatal(err)
	}
	before, err := mcretiming.ReportFPGA(mapped)
	if err != nil {
		log.Fatal(err)
	}

	retimed, rep, err := mcretiming.Retime(mapped, mcretiming.Options{
		Objective: mcretiming.MinAreaAtMinPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	remapped, err := mcretiming.MapXC4000(retimed)
	if err != nil {
		log.Fatal(err)
	}
	after, err := mcretiming.ReportFPGA(remapped)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("classes: %d   steps: %d/%d   justifications: %d local, %d global\n",
		rep.NumClasses, rep.StepsMoved, rep.StepsPossible,
		rep.JustifyLocal, rep.JustifyGlobal)
	fmt.Printf("%-8s %6s %6s %8s\n", "", "#FF", "#LUT", "Delay")
	fmt.Printf("%-8s %6d %6d %7.1fn\n", "mapped", before.FFs, before.LUTs+before.Carry,
		float64(before.Delay)/1000)
	fmt.Printf("%-8s %6d %6d %7.1fn\n", "retimed", after.FFs, after.LUTs+after.Carry,
		float64(after.Delay)/1000)
	fmt.Printf("%-8s %6.2f %6.2f %7.2f\n", "ratio",
		float64(after.FFs)/float64(before.FFs),
		float64(after.LUTs+after.Carry)/float64(before.LUTs+before.Carry),
		float64(after.Delay)/float64(before.Delay))

	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := mcretiming.WriteNetlist(f, remapped); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("retimed netlist written to %s\n", *outFile)
	}
}
