// Loadenable reproduces the paper's Fig. 1: the same two-register
// load-enable circuit retimed (b) directly with multiple-class retiming and
// (d) after decomposing the enables into feedback multiplexers. The mc flow
// ends with one enable register and no extra logic; the conventional flow
// pays two extra registers and two multiplexers.
package main

import (
	"fmt"
	"log"

	"mcretiming"
)

// build returns Fig. 1a) with a slow downstream cone so the minimum period
// wants the register layer moved forward across the AND gate.
func build() *mcretiming.Circuit {
	c := mcretiming.NewCircuit("fig1")
	i1 := c.AddInput("i1")
	i2 := c.AddInput("i2")
	en := c.AddInput("en")
	clk := c.AddInput("clk")
	r1, q1 := c.AddReg("r1", i1, clk)
	r2, q2 := c.AddReg("r2", i2, clk)
	c.Regs[r1].EN = en
	c.Regs[r2].EN = en
	_, g := c.AddGate("g", mcretiming.And, []mcretiming.SignalID{q1, q2}, 3_500)
	sig := g
	for i := 0; i < 3; i++ {
		_, sig = c.AddGate("", mcretiming.Xor, []mcretiming.SignalID{sig, i1, i2}, 3_500)
	}
	c.MarkOutput(sig)
	return c
}

func run(name string, c *mcretiming.Circuit) {
	out, rep, err := mcretiming.Retime(c, mcretiming.Options{
		Objective: mcretiming.MinAreaAtMinPeriod,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	enRegs := 0
	out.LiveRegs(func(r *mcretiming.Reg) {
		if r.HasEN() {
			enRegs++
		}
	})
	fmt.Printf("%-26s  FF %d -> %d (%d with EN)   gates %d -> %d   period %.1f -> %.1f ns\n",
		name, rep.RegsBefore, rep.RegsAfter, enRegs, c.NumGates(), out.NumGates(),
		float64(rep.PeriodBefore)/1000, float64(rep.PeriodAfter)/1000)
}

func main() {
	fmt.Println("Fig. 1: two registers with a shared load enable, slow logic behind them")
	run("b) multiple-class retiming", build())
	run("d) decompose EN + retiming", mcretiming.DecomposeEnables(build()))
}
