// Batch example: submit several BLIF circuits as one tenant batch and follow
// it live over the event stream.
//
// Start the daemon, then:
//
//	go run ./cmd/mcretimed -addr :8472 &
//	go run ./examples/batch -addr http://localhost:8472 -tenant acme a.blif b.blif c.blif
//
// The client POSTs all circuits to /v1/batch under the X-MCRetiming-Tenant
// header (with an Idempotency-Key, so re-running the command replays the same
// batch instead of resubmitting it), then tails /v1/batch/{id}/events —
// reconnecting with ?after= if the stream drops — and prints one line per
// job-lifecycle event until batch_done. The aggregate summary goes to stderr.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

type batchEvent struct {
	Seq      int    `json:"seq"`
	Event    string `json:"event"`
	Job      string `json:"job,omitempty"`
	Worker   string `json:"worker,omitempty"`
	PeriodPS int64  `json:"period_ps,omitempty"`
	Regs     int    `json:"regs,omitempty"`
	Error    string `json:"error,omitempty"`
	Total    int    `json:"total,omitempty"`
	Failed   int    `json:"failed,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8472", "mcretimed base URL")
	tenantID := flag.String("tenant", "", "tenant to submit as (default tenant when empty)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: batch-client [-addr URL] [-tenant ID] a.blif [b.blif ...]")
		os.Exit(1)
	}

	var jobs []map[string]any
	sum := sha256.New()
	for _, path := range flag.Args() {
		circuit, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sum.Write(circuit)
		jobs = append(jobs, map[string]any{"blif": string(circuit)})
	}
	body, err := json.Marshal(map[string]any{"jobs": jobs})
	if err != nil {
		fatal(err)
	}

	req, err := http.NewRequest(http.MethodPost, *addr+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if *tenantID != "" {
		req.Header.Set("X-MCRetiming-Tenant", *tenantID)
	}
	// Derived from the inputs: re-running the same command replays the same
	// batch rather than admitting a duplicate.
	req.Header.Set("Idempotency-Key", fmt.Sprintf("batch-example-%x", sum.Sum(nil)[:8]))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	var accepted struct {
		ID    string `json:"id"`
		Total int    `json:"total"`
		Error *struct {
			Code   string `json:"code"`
			Detail string `json:"detail"`
			Tenant string `json:"tenant"`
			Limit  int    `json:"limit"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		fatal(err)
	}
	resp.Body.Close()
	if accepted.Error != nil {
		if accepted.Error.Code == "quota_exceeded" {
			fatal(fmt.Errorf("tenant %q over quota (limit %d): retry after your jobs drain",
				accepted.Error.Tenant, accepted.Error.Limit))
		}
		fatal(fmt.Errorf("HTTP %d: %s: %s", resp.StatusCode, accepted.Error.Code, accepted.Error.Detail))
	}
	if resp.Header.Get("Idempotency-Replayed") == "true" {
		fmt.Fprintf(os.Stderr, "batch %s replayed (already submitted)\n", accepted.ID)
	} else {
		fmt.Fprintf(os.Stderr, "batch %s accepted: %d jobs\n", accepted.ID, accepted.Total)
	}

	// Tail the event stream; after a drop, resume from the last seq seen.
	after := -1
	for {
		done, err := tail(*addr, accepted.ID, &after)
		if done {
			return
		}
		fmt.Fprintf(os.Stderr, "stream dropped (%v), reconnecting from seq %d\n", err, after)
		time.Sleep(time.Second)
	}
}

// tail streams batch events starting after *after, printing each and
// advancing *after; it reports done when batch_done arrives.
func tail(addr, id string, after *int) (bool, error) {
	url := fmt.Sprintf("%s/v1/batch/%s/events", addr, id)
	if *after >= 0 {
		url = fmt.Sprintf("%s?after=%d", url, *after)
	}
	resp, err := http.Get(url)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev batchEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return false, err
		}
		*after = ev.Seq
		switch ev.Event {
		case "done":
			fmt.Printf("%-14s %s  period %.1f ns, %d regs  (worker %s)\n",
				ev.Event, ev.Job, float64(ev.PeriodPS)/1000, ev.Regs, orLocal(ev.Worker))
		case "failed":
			fmt.Printf("%-14s %s  %s\n", ev.Event, ev.Job, ev.Error)
		case "batch_done":
			fmt.Printf("%-14s %d jobs, %d failed\n", ev.Event, ev.Total, ev.Failed)
			return true, nil
		default:
			fmt.Printf("%-14s %s\n", ev.Event, ev.Job)
		}
	}
	return false, sc.Err()
}

func orLocal(w string) string {
	if w == "" {
		return "local"
	}
	return w
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batch-client:", err)
	os.Exit(1)
}
