// Formal retimes a small multiple-class circuit and then PROVES the result
// equivalent to the original with the bounded model checker — exhaustively
// over every input sequence up to a depth, not by random sampling — and
// dumps a simulation trace of both circuits as VCD for waveform viewing.
package main

import (
	"fmt"
	"log"
	"os"

	"mcretiming"
	"mcretiming/internal/logic"
	"mcretiming/internal/sim"
	"mcretiming/internal/vcd"
)

func build() *mcretiming.Circuit {
	c := mcretiming.NewCircuit("formal")
	a := c.AddInput("a")
	b := c.AddInput("b")
	rst := c.AddInput("rst")
	clk := c.AddInput("clk")
	_, x := c.AddGate("g1", mcretiming.Xor, []mcretiming.SignalID{a, b}, 7_000)
	_, y := c.AddGate("g2", mcretiming.Nand, []mcretiming.SignalID{x, a}, 1_000)
	r, q := c.AddReg("r", y, clk)
	c.Regs[r].SR = rst
	c.Regs[r].SRVal = mcretiming.B1
	_, o := c.AddGate("g3", mcretiming.Not, []mcretiming.SignalID{q}, 1_000)
	c.MarkOutput(o)
	return c
}

func main() {
	orig := build()
	retimed, rep, err := mcretiming.Retime(orig, mcretiming.Options{
		Objective: mcretiming.MinAreaAtMinPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("period %.1f -> %.1f ns, FF %d -> %d, %d local justifications\n",
		float64(rep.PeriodBefore)/1000, float64(rep.PeriodAfter)/1000,
		rep.RegsBefore, rep.RegsAfter, rep.JustifyLocal)

	const depth = 10
	res, err := mcretiming.ProveEquivalent(orig, retimed, mcretiming.BMCOptions{
		Depth: depth, Skip: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Equivalent {
		log.Fatalf("NOT equivalent: cycle %d output %d", res.Cycle, res.Output)
	}
	fmt.Printf("proved equivalent for all input sequences up to %d cycles\n", depth)

	// Waveform dump of the retimed circuit under a reset-then-count pattern.
	s, err := sim.New(retimed)
	if err != nil {
		log.Fatal(err)
	}
	rec := vcd.NewRecorder(retimed)
	for cyc := 0; cyc < 16; cyc++ {
		s.Eval([]logic.Bit{
			logic.FromBool(cyc%2 == 0), // a
			logic.FromBool(cyc%4 < 2),  // b
			logic.FromBool(cyc < 2),    // rst pulse
			logic.B0,                   // clk (cycle-based model)
		})
		rec.Sample(s)
		s.Step()
	}
	f, err := os.Create("retimed.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rec.Write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace written to retimed.vcd (open with GTKWave)")
}
