// Sharing demonstrates the paper's §4.2 register-sharing repair (Fig. 4).
//
// A multi-fanout node drives two branches whose registers belong to
// different classes (one plain, one load-enabled). The naive Leiserson–Saxe
// sharing cost bills the fanout registers as shared — max over the edges —
// although incompatible registers can never share a flip-flop. With the
// separation-vertex transform the minarea engine sees the true cost; the
// ablation (DisableSharing) shows the undercount in action.
package main

import (
	"fmt"
	"log"

	"mcretiming"
)

func build() *mcretiming.Circuit {
	c := mcretiming.NewCircuit("fig4")
	in := c.AddInput("in")
	en := c.AddInput("en")
	clk := c.AddInput("clk")

	_, u := c.AddGate("u", mcretiming.Not, []mcretiming.SignalID{in}, 3_500)
	// Branch 1: plain register, then logic.
	_, qa := c.AddReg("ra", u, clk)
	_, v1 := c.AddGate("v1", mcretiming.Not, []mcretiming.SignalID{qa}, 3_500)
	// Branch 2: load-enable register (a different class), then logic.
	rb, qb := c.AddReg("rb", u, clk)
	c.Regs[rb].EN = en
	_, v2 := c.AddGate("v2", mcretiming.Not, []mcretiming.SignalID{qb}, 3_500)
	c.MarkOutput(v1)
	c.MarkOutput(v2)
	return c
}

func run(name string, disable bool) {
	c := build()
	out, rep, err := mcretiming.Retime(c, mcretiming.Options{
		Objective:      mcretiming.MinAreaAtMinPeriod,
		DisableSharing: disable,
	})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("%-34s FF %d -> %d, period %.1f -> %.1f ns\n",
		name, rep.RegsBefore, rep.RegsAfter,
		float64(rep.PeriodBefore)/1000, float64(rep.PeriodAfter)/1000)
	// Show what classes survived.
	plain, enabled := 0, 0
	out.LiveRegs(func(r *mcretiming.Reg) {
		if r.HasEN() {
			enabled++
		} else {
			plain++
		}
	})
	fmt.Printf("%-34s %d plain + %d enabled registers\n", "", plain, enabled)
}

func main() {
	fmt.Println("Fig. 4: incompatible registers at a multi-fanout node")
	run("with separation vertices (§4.2)", false)
	run("ablation: naive sharing cost", true)
}
