// Serving example: a minimal client for the mcretimed HTTP API.
//
// Start the daemon, then retime a BLIF circuit over HTTP:
//
//	go run ./cmd/mcretimed -addr :8472 &
//	go run ./examples/server -addr http://localhost:8472 examples/server/quickstart.blif
//
// The client submits the circuit with ?wait=1 (block until done), prints the
// report to stderr, and writes the retimed BLIF to stdout — mirroring what
// `mcretime -blif` does locally, so the two outputs can be diffed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
)

type retimeRequest struct {
	BLIF    string         `json:"blif"`
	Options map[string]any `json:"options,omitempty"`
}

type jobReply struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Result *struct {
		BLIF   string         `json:"blif"`
		Report map[string]any `json:"report"`
	} `json:"result"`
	Error *struct {
		Code   string `json:"code"`
		Detail string `json:"detail"`
	} `json:"error"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8472", "mcretimed base URL")
	objective := flag.String("objective", "", `objective: "", "min-period", "min-area", "min-area-at-period"`)
	periodPS := flag.Int("period", 0, "target period in ps (for min-area-at-period)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: server-client [-addr URL] [-objective O] [-period PS] in.blif")
		os.Exit(1)
	}

	circuit, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	req := retimeRequest{BLIF: string(circuit)}
	if *objective != "" || *periodPS > 0 {
		req.Options = map[string]any{}
		if *objective != "" {
			req.Options["objective"] = *objective
		}
		if *periodPS > 0 {
			req.Options["target_period_ps"] = *periodPS
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}

	resp, err := http.Post(*addr+"/v1/retime?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	var reply jobReply
	if err := json.Unmarshal(data, &reply); err != nil {
		fatal(fmt.Errorf("non-JSON reply (HTTP %d): %s", resp.StatusCode, data))
	}
	if reply.Error != nil {
		fatal(fmt.Errorf("HTTP %d: %s: %s", resp.StatusCode, reply.Error.Code, reply.Error.Detail))
	}
	if reply.Result == nil {
		fatal(fmt.Errorf("job %s finished with status %q and no result", reply.ID, reply.Status))
	}

	rep := reply.Result.Report
	fmt.Fprintf(os.Stderr, "%s: period %.1f -> %.1f ns, FF %.0f -> %.0f (workers %.0f)\n",
		reply.ID,
		num(rep, "period_before_ps")/1000, num(rep, "period_after_ps")/1000,
		num(rep, "regs_before"), num(rep, "regs_after"), num(rep, "workers"))
	fmt.Print(reply.Result.BLIF)
}

// num reads a numeric report field, tolerating its absence.
func num(m map[string]any, key string) float64 {
	v, _ := m[key].(float64)
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "server-client:", err)
	os.Exit(1)
}
