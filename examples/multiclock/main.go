// Multiclock shows that register classes subsume clock domains (the class
// tuple starts with the clock signal, following Legl et al., the paper's
// reference [7]): a two-domain design retimes freely inside each domain but
// never mixes layers across the boundary.
package main

import (
	"fmt"
	"log"

	"mcretiming"
)

func main() {
	c := mcretiming.NewCircuit("twoclock")
	in := c.AddInput("in")
	clkFast := c.AddInput("clk_fast")
	clkSlow := c.AddInput("clk_slow")

	// Fast domain: badly placed register before deep logic.
	_, q1 := c.AddReg("fa", in, clkFast)
	sig := q1
	for i := 0; i < 3; i++ {
		_, sig = c.AddGate("", mcretiming.Not, []mcretiming.SignalID{sig}, 3_000)
	}
	_, q2 := c.AddReg("fb", sig, clkFast)

	// Domain crossing into the slow domain (a synchronizer-style chain).
	_, q3 := c.AddReg("sa", q2, clkSlow)
	_, sig2 := c.AddGate("", mcretiming.Not, []mcretiming.SignalID{q3}, 2_000)
	_, q4 := c.AddReg("sb", sig2, clkSlow)
	c.MarkOutput(q4)

	out, rep, err := mcretiming.Retime(c, mcretiming.Options{
		Objective: mcretiming.MinAreaAtMinPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classes: %d (one per clock domain)\n", rep.NumClasses)
	fmt.Printf("period:  %.1f -> %.1f ns\n",
		float64(rep.PeriodBefore)/1000, float64(rep.PeriodAfter)/1000)

	perClk := map[string]int{}
	out.LiveRegs(func(r *mcretiming.Reg) {
		perClk[out.SignalName(r.Clk)]++
	})
	for name, n := range perClk {
		fmt.Printf("  %d registers on %s\n", n, name)
	}

	res, err := mcretiming.Equivalent(c, out, mcretiming.Stimulus{
		Cycles: 64, Seqs: 8, Skip: 6, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equivalent on %d known output samples\n", res.Compared)
}
