// Quickstart: build a small load-enable pipeline, retime it for minimum
// area at the best clock period, and verify the result is sequentially
// equivalent to the original.
package main

import (
	"fmt"
	"log"

	"mcretiming"
)

func main() {
	// A two-stage datapath whose registers share one load enable. The
	// second stage is much deeper than the first, so the register layer
	// sits in the wrong place for speed.
	c := mcretiming.NewCircuit("quickstart")
	a := c.AddInput("a")
	b := c.AddInput("b")
	en := c.AddInput("en")
	clk := c.AddInput("clk")

	r1, q1 := c.AddReg("r1", a, clk)
	r2, q2 := c.AddReg("r2", b, clk)
	c.Regs[r1].EN = en
	c.Regs[r2].EN = en

	_, x := c.AddGate("g1", mcretiming.And, []mcretiming.SignalID{q1, q2}, 1_000)
	_, y := c.AddGate("g2", mcretiming.Xor, []mcretiming.SignalID{x, a}, 4_000)
	_, z := c.AddGate("g3", mcretiming.Nor, []mcretiming.SignalID{y, b}, 4_000)
	c.MarkOutput(z)

	out, rep, err := mcretiming.Retime(c, mcretiming.Options{
		Objective: mcretiming.MinAreaAtMinPeriod,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("classes:   %d\n", rep.NumClasses)
	fmt.Printf("period:    %.1f ns -> %.1f ns\n",
		float64(rep.PeriodBefore)/1000, float64(rep.PeriodAfter)/1000)
	fmt.Printf("registers: %d -> %d\n", rep.RegsBefore, rep.RegsAfter)
	fmt.Printf("steps:     %d moved of %d possible\n", rep.StepsMoved, rep.StepsPossible)

	res, err := mcretiming.Equivalent(c, out, mcretiming.Stimulus{
		Cycles: 64, Seqs: 8, Skip: 4, Seed: 1,
		Bias: map[string]float64{"en": 0.75},
	})
	if err != nil {
		log.Fatalf("equivalence check failed: %v", err)
	}
	fmt.Printf("equivalent on %d known output samples\n", res.Compared)
}
