package mcretiming_test

import (
	"bytes"
	"strings"
	"testing"

	"mcretiming"
	"mcretiming/internal/gen"
	"mcretiming/internal/netlist"
)

func genCircuit(t *testing.T, i int) *netlist.Circuit {
	t.Helper()
	c, err := gen.Circuit(i)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunFlowImprovesDelay(t *testing.T) {
	c := genCircuit(t, 3)
	res, err := mcretiming.RunFlow(c, mcretiming.FlowOptions{Clean: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.After.Delay >= res.Before.Delay {
		t.Errorf("flow did not improve delay: %d -> %d", res.Before.Delay, res.After.Delay)
	}
	if res.Report.NumClasses == 0 {
		t.Error("report missing class count")
	}
	skip := res.Mapped.NumRegs() + res.Retimed.NumRegs() + 2
	if _, err := mcretiming.Equivalent(res.Mapped, res.Retimed, mcretiming.Stimulus{
		Cycles: skip + 32, Seqs: 4, Skip: skip, Seed: 1,
		Bias: map[string]float64{"en": 0.8},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlowEnableBaselineCostsMore(t *testing.T) {
	c := genCircuit(t, 3) // enable-rich circuit
	mc, err := mcretiming.RunFlow(c, mcretiming.FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := mcretiming.RunFlow(c, mcretiming.FlowOptions{DecomposeEN: true})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 3 claim in miniature: decomposing enables costs
	// area at no delay advantage.
	if base.After.LUTs < mc.After.LUTs {
		t.Errorf("decomposed flow used fewer LUTs (%d < %d)?", base.After.LUTs, mc.After.LUTs)
	}
	if base.After.Delay < mc.After.Delay {
		t.Errorf("decomposed flow was faster (%d < %d)?", base.After.Delay, mc.After.Delay)
	}
}

func TestCriticalPathReport(t *testing.T) {
	c := genCircuit(t, 2)
	mapped, err := mcretiming.MapXC4000(mcretiming.DecomposeSyncResets(c.Clone()))
	if err != nil {
		t.Fatal(err)
	}
	path, total, err := mcretiming.CriticalPath(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || total == 0 {
		t.Fatal("no critical path found on a combinational-rich circuit")
	}
	st, err := mcretiming.ReportFPGA(mapped)
	if err != nil {
		t.Fatal(err)
	}
	if total != st.Delay {
		t.Errorf("critical path %d != reported delay %d", total, st.Delay)
	}
	var buf bytes.Buffer
	if err := mcretiming.PrintCriticalPath(&buf, mapped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "critical path") {
		t.Error("report header missing")
	}
}
