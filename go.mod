module mcretiming

go 1.22
