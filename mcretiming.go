// Package mcretiming is a from-scratch implementation of multiple-class
// retiming (Eckl, Madre, Zepter, Legl: "A Practical Approach to
// Multiple-Class Retiming", DAC 1999): minimum-period and minimum-area
// retiming for synchronous circuits whose registers carry synchronous load
// enables and synchronous/asynchronous set/clear inputs.
//
// Registers are classified by the signals on their control pins; a layer of
// registers moves across a gate only when all its registers are compatible
// (same class). Per-vertex retiming bounds derived by maximal backward and
// forward retiming reduce the problem to basic (Leiserson–Saxe) retiming,
// solved here with lazily generated period constraints and a min-cost-flow
// minarea engine; equivalent reset states are computed move-by-move with
// BDD justification.
//
// The package is a façade over the internal packages:
//
//	netlist   circuit model with generic registers
//	mcgraph   the multiple-class retiming graph (classes, bounds, sharing)
//	graph     basic retiming graph, feasibility, minperiod
//	retime    minimum-area retiming (min-cost-flow dual)
//	justify   BDD reset-state justification (local + global)
//	core      the six-step mc-retiming flow
//	explore   design-space sweep: the period↔register-area Pareto front
//	store     content-addressed on-disk result store backing the sweep
//	xc4000    4-LUT FPGA mapper, delay model, decomposition baselines
//	sim       three-valued cycle simulator
//	verify    sequential equivalence by random simulation
//	hdlio     textual netlist reader/writer
//	gen       synthetic benchmark suite (the paper's C1–C10 stand-ins)
//	bench     the paper's Tables 1–3 and Fig. 1 experiment pipelines
//
// Quick start:
//
//	c := mcretiming.NewCircuit("dff")
//	d := c.AddInput("d")
//	clk := c.AddInput("clk")
//	_, q := c.AddReg("r", d, clk)
//	c.MarkOutput(q)
//	out, rep, err := mcretiming.Retime(c, mcretiming.Options{})
package mcretiming

import (
	"context"
	"io"

	"mcretiming/internal/blif"
	"mcretiming/internal/bmc"
	"mcretiming/internal/core"
	"mcretiming/internal/explore"
	"mcretiming/internal/hdlio"
	"mcretiming/internal/logic"
	"mcretiming/internal/netlist"
	"mcretiming/internal/opt"
	"mcretiming/internal/rterr"
	"mcretiming/internal/store"
	"mcretiming/internal/trace"
	"mcretiming/internal/verify"
	"mcretiming/internal/verilog"
	"mcretiming/internal/xc4000"
)

// Circuit is a gate-level netlist with generic registers (D, Q, clock,
// optional EN / synchronous / asynchronous set-clear pins).
type Circuit = netlist.Circuit

// NewCircuit returns an empty circuit.
func NewCircuit(name string) *Circuit { return netlist.New(name) }

// Re-exported netlist types and identifiers.
type (
	// SignalID names a wire within a Circuit.
	SignalID = netlist.SignalID
	// GateID names a gate within a Circuit.
	GateID = netlist.GateID
	// RegID names a register within a Circuit.
	RegID = netlist.RegID
	// Gate is a combinational gate instance.
	Gate = netlist.Gate
	// Reg is a generic register instance.
	Reg = netlist.Reg
	// GateType enumerates combinational gate kinds.
	GateType = netlist.GateType
	// Bit is a ternary logic value (0, 1, X).
	Bit = logic.Bit
)

// Gate type constants.
const (
	Buf    = netlist.Buf
	Not    = netlist.Not
	And    = netlist.And
	Or     = netlist.Or
	Nand   = netlist.Nand
	Nor    = netlist.Nor
	Xor    = netlist.Xor
	Xnor   = netlist.Xnor
	Mux    = netlist.Mux
	Lut    = netlist.Lut
	Carry  = netlist.Carry
	Const0 = netlist.Const0
	Const1 = netlist.Const1
)

// Logic values.
const (
	B0 = logic.B0
	B1 = logic.B1
	BX = logic.BX
)

// NoSignal marks an unconnected optional register pin.
const NoSignal = netlist.NoSignal

// Options configures Retime.
type Options = core.Options

// Budgets caps solver resources (Options.Budgets). A blown budget degrades —
// BDD justification escalates to SAT, minarea falls back to the feasible
// minperiod retiming (noted in Report.Degraded) — it never crashes the flow.
type Budgets = core.Budgets

// Report summarizes a retiming run.
type Report = core.Report

// Objective selects the optimization goal.
type Objective = core.Objective

// Objectives.
const (
	// MinPeriod minimizes the clock period.
	MinPeriod = core.MinPeriod
	// MinAreaAtMinPeriod minimizes registers at the minimum feasible period
	// (the paper's "minimal area for best delay").
	MinAreaAtMinPeriod = core.MinAreaAtMinPeriod
	// MinAreaAtPeriod minimizes registers at Options.TargetPeriod.
	MinAreaAtPeriod = core.MinAreaAtPeriod
)

// PassTime is one pipeline pass's wall-clock time within a Report.
type PassTime = core.PassTime

// SolveEngine selects the period-constraint machinery (Options.Engine).
type SolveEngine = core.SolveEngine

// Engines. EngineAuto (the zero value) runs the matrix-free sparse engine,
// cross-checked against the dense reference on small graphs when invariant
// checks are enabled; EngineSparse skips the cross-check; EngineDense selects
// the O(V²) W/D reference formulation.
const (
	EngineAuto   = core.EngineAuto
	EngineSparse = core.EngineSparse
	EngineDense  = core.EngineDense
)

// ParseEngine parses an engine flag/wire token ("", "auto", "sparse",
// "dense").
func ParseEngine(s string) (SolveEngine, error) { return core.ParseEngine(s) }

// Error taxonomy: every error escaping a public entry point wraps exactly one
// of these sentinels, so callers classify failures with errors.Is instead of
// string matching.
var (
	// ErrInfeasiblePeriod: no retiming meets the requested clock period.
	ErrInfeasiblePeriod = rterr.ErrInfeasiblePeriod
	// ErrBudgetExceeded: a solver resource budget was exhausted and no
	// degradation path could absorb it.
	ErrBudgetExceeded = rterr.ErrBudgetExceeded
	// ErrJustifyConflict: equivalent reset states do not exist for the chosen
	// register moves, even after the §5.2 re-retiming retries.
	ErrJustifyConflict = rterr.ErrJustifyConflict
	// ErrMalformedInput: the input circuit or file is not well-formed.
	ErrMalformedInput = rterr.ErrMalformedInput
	// ErrInvariant: an internal consistency check failed after a pass.
	ErrInvariant = rterr.ErrInvariant
	// ErrInternal: a programming error, including a recovered pass crash.
	ErrInternal = rterr.ErrInternal
)

// Retime applies multiple-class retiming to c and returns the retimed
// circuit and a report. c is not modified.
func Retime(c *Circuit, opts Options) (*Circuit, *Report, error) {
	return core.Retime(c, opts)
}

// RetimeCtx is Retime with cooperative cancellation: ctx is polled between
// pipeline passes and inside every long-running solver loop (cutting-plane
// rounds, min-cost-flow augmentations, SAT/BDD justification), and its error
// is returned when it fires. Attach a TraceSink via Options.Trace for
// per-pass spans and solver counters.
func RetimeCtx(ctx context.Context, c *Circuit, opts Options) (*Circuit, *Report, error) {
	return core.RetimeCtx(ctx, c, opts)
}

// Prepared is a circuit with the model half of the retiming flow (mc-graph,
// class bounds, sharing) done: ready to solve at any number of target periods
// concurrently, and to absorb gate-delay ECOs via Apply without a cold
// re-prepare.
type Prepared = core.Prepared

// Edit is a netlist ECO a Prepared can absorb incrementally: a new
// propagation delay for one named gate. See Prepared.Apply.
type Edit = core.Edit

// Prepare runs the model half of the retiming flow on c and returns the
// reusable state: Anchor solves MinAreaAtMinPeriod (bit-identical to Retime),
// SolveAtPeriod solves at any feasible target, Candidates streams the
// candidate periods, and Apply ECO-updates the state for a gate-delay edit at
// a fraction of the cost of a cold Prepare.
func Prepare(ctx context.Context, c *Circuit, opts Options) (*Prepared, error) {
	return core.Prepare(ctx, c, opts)
}

// ExploreOptions configures Explore: the core option set per solve, the
// sweep-level parallelism, an optional point cap, an optional persistent
// result store, and trace/progress hooks.
type ExploreOptions = explore.Options

// Front is the Pareto front of feasible clock period vs. register count
// computed by Explore: the stable mcretiming-front/v1 output.
type Front = explore.Front

// ParetoPoint is one point of a Front.
type ParetoPoint = explore.Point

// Explore sweeps the candidate clock periods of c (the distinct D-matrix
// entries) and returns the Pareto front of feasible period vs. register
// count. The minimum-period endpoint is bit-identical to the single-point
// Retime(MinAreaAtMinPeriod) result, and the front is deterministic at any
// parallelism. With ExploreOptions.Store set, solved points persist across
// runs and processes.
func Explore(ctx context.Context, c *Circuit, o ExploreOptions) (*Front, error) {
	return explore.Sweep(ctx, c, o)
}

// ResultStore is a content-addressed on-disk store for solved results; see
// internal/store for the corruption-tolerance guarantees. A nil *ResultStore
// is a valid always-miss store.
type ResultStore = store.Store

// StoreStats is a snapshot of a ResultStore's hit/miss/corruption counters.
type StoreStats = store.Stats

// OpenStore opens (creating if needed) a result store rooted at dir.
func OpenStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// TraceSink receives hierarchical spans and counters from an instrumented
// run. Pass a *TraceRecorder (or any custom implementation) in
// Options.Trace / FlowOptions.Trace.
type TraceSink = trace.Sink

// TraceRecorder is the in-memory TraceSink: it builds a span tree that can
// be rendered as an indented text report (WriteText) or as Chrome trace-event
// JSON (WriteChromeTrace, load in chrome://tracing or Perfetto).
type TraceRecorder = trace.Recorder

// TraceSpan is one completed (or still-open) span in a TraceRecorder.
type TraceSpan = trace.Span

// NewTraceRecorder returns an empty recorder ready to use as a TraceSink.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// NopTraceSink returns a sink that discards everything — the default when
// no trace is requested.
func NopTraceSink() TraceSink { return trace.Nop() }

// ReadNetlist parses the textual netlist format.
func ReadNetlist(r io.Reader) (*Circuit, error) { return hdlio.Read(r) }

// WriteNetlist serializes c in the textual netlist format.
func WriteNetlist(w io.Writer, c *Circuit) error { return hdlio.Write(w, c) }

// ReadBLIF parses a Berkeley Logic Interchange Format model (generic
// register controls round-trip through the "# .mcreg" comment extension).
func ReadBLIF(r io.Reader) (*Circuit, error) { return blif.Read(r) }

// WriteBLIF serializes c as BLIF.
func WriteBLIF(w io.Writer, c *Circuit) error { return blif.Write(w, c) }

// WriteVerilog emits c as a synthesizable structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit) error { return verilog.Write(w, c) }

// CleanResult reports what Clean removed.
type CleanResult = opt.Result

// Clean runs constant folding, buffer sweeping and dead-logic removal to a
// fixpoint, returning a fresh circuit.
func Clean(c *Circuit) (*Circuit, *CleanResult, error) { return opt.Clean(c) }

// Strash merges structurally identical gates (structural hashing) and
// returns the fresh circuit with the number of gates merged.
func Strash(c *Circuit) (*Circuit, int, error) { return opt.Strash(c) }

// CLBEstimate approximates XC4000E configurable-logic-block usage.
type CLBEstimate = xc4000.CLBEstimate

// EstimateCLBs computes CLB packing for a mapped circuit.
func EstimateCLBs(c *Circuit) CLBEstimate { return xc4000.EstimateCLBs(c) }

// MapXC4000 technology-maps c into 4-input LUTs with the XC4000E-flavoured
// delay model. It also serves as the post-retiming "remap".
func MapXC4000(c *Circuit) (*Circuit, error) { return xc4000.Map(c) }

// DecomposeEnables rewrites load enables into feedback multiplexers (the
// conventional-flow baseline). c is modified in place and returned.
func DecomposeEnables(c *Circuit) *Circuit { return xc4000.DecomposeEnables(c) }

// DecomposeSyncResets rewrites synchronous set/clear pins into logic (the
// XC4000E has none). c is modified in place and returned.
func DecomposeSyncResets(c *Circuit) *Circuit { return xc4000.DecomposeSyncResets(c) }

// FPGAStats is a mapped circuit's area/timing summary.
type FPGAStats = xc4000.Stats

// ReportFPGA computes area and timing statistics for a circuit.
func ReportFPGA(c *Circuit) (FPGAStats, error) { return xc4000.Report(c) }

// Stimulus configures Equivalent.
type Stimulus = verify.Stimulus

// EquivalenceResult summarizes an equivalence run.
type EquivalenceResult = verify.Result

// Equivalent checks sequential equivalence of two circuits by three-valued
// random simulation (see internal/verify for the exact guarantee).
func Equivalent(a, b *Circuit, st Stimulus) (*EquivalenceResult, error) {
	return verify.Equivalent(a, b, st)
}

// BMCOptions configures ProveEquivalent.
type BMCOptions = bmc.Options

// BMCResult reports a bounded equivalence check.
type BMCResult = bmc.Result

// ProveEquivalent unrolls both circuits Depth cycles into one SAT instance
// and decides — exhaustively over all input sequences — whether a
// known-vs-known output mismatch is reachable. Equivalent=true is a proof
// up to the depth, not a sample.
func ProveEquivalent(a, b *Circuit, opts BMCOptions) (*BMCResult, error) {
	return bmc.Check(a, b, opts)
}

// ProveEquivalentCtx is ProveEquivalent with cooperative cancellation: ctx
// is polled once per unrolled cycle and throughout the SAT search.
func ProveEquivalentCtx(ctx context.Context, a, b *Circuit, opts BMCOptions) (*BMCResult, error) {
	return bmc.CheckCtx(ctx, a, b, opts)
}

// Verdict is the outcome of ProveEquivalentUnbounded.
type Verdict = bmc.Verdict

// Verdicts.
const (
	Proven         = bmc.Proven
	Counterexample = bmc.Counterexample
	Unknown        = bmc.Unknown
)

// ProveResult reports an unbounded equivalence attempt.
type ProveResult = bmc.ProveResult

// ProveEquivalentUnbounded attempts k-induction: a bounded base case plus
// an inductive step over arbitrary states. Verdict Proven holds for all
// time; Unknown means only that this induction depth was insufficient.
func ProveEquivalentUnbounded(a, b *Circuit, opts BMCOptions) (*ProveResult, error) {
	return bmc.Prove(a, b, opts)
}

// ProveEquivalentUnboundedCtx is ProveEquivalentUnbounded with cooperative
// cancellation across both the base case and the inductive step.
func ProveEquivalentUnboundedCtx(ctx context.Context, a, b *Circuit, opts BMCOptions) (*ProveResult, error) {
	return bmc.ProveCtx(ctx, a, b, opts)
}
